//! Inception-V3 (Szegedy et al., 2016), batch size 1 — benchmark 1.
//!
//! "This model is relatively small and can easily fit into a single
//! GPU" (§4.1); the RL agents must discover that placing (nearly)
//! everything on one GPU is optimal. The generator follows the real
//! architecture module-by-module: stem, 3×Inception-A, reduction-A,
//! 4×Inception-B, reduction-B, 2×Inception-C, head.
//!
//! In the [`Profile::Reduced`] profile each conv op folds its batch
//! norm + ReLU; [`Profile::Paper`] emits them as separate ops
//! (tripling the op count, matching TF graph granularity).

use crate::builder::GraphBuilder;
use crate::generators::{Profile, TRAIN_FLOPS_FACTOR};
use crate::graph::{CompGraph, NodeId, TensorShape};
use crate::op::OpKind;
use crate::shape;

const BATCH: usize = 1;
/// Activation-memory calibration (framework workspace etc.).
const MEM_SCALE: u64 = 4;

struct Ctx {
    b: GraphBuilder,
    profile: Profile,
    conv_count: usize,
}

impl Ctx {
    /// A conv + BN + ReLU block. Returns the output node.
    fn conv(
        &mut self,
        name: &str,
        input: NodeId,
        k: (usize, usize),
        cin: usize,
        cout: usize,
        out_hw: (usize, usize),
    ) -> NodeId {
        self.conv_count += 1;
        let out = shape![BATCH, out_hw.0, out_hw.1, cout];
        let fwd_flops = 2.0
            * k.0 as f64
            * k.1 as f64
            * cin as f64
            * cout as f64
            * out_hw.0 as f64
            * out_hw.1 as f64
            * BATCH as f64;
        let params = (k.0 * k.1 * cin * cout + 2 * cout) as u64 * 4;
        let act = out.bytes() * MEM_SCALE;
        let conv = self.b.add(
            crate::builder::NodeSpec {
                kind: OpKind::Conv2d,
                name: format!("{name}/conv"),
                out: out.clone(),
                flops: fwd_flops * TRAIN_FLOPS_FACTOR,
                param_bytes: params,
                activation_bytes: Some(act),
            },
            &[input],
        );
        match self.profile {
            Profile::Reduced => conv,
            Profile::Paper => {
                let elem_flops = out.num_elements() as f64 * TRAIN_FLOPS_FACTOR;
                let bn = self.b.add(
                    crate::builder::NodeSpec {
                        kind: OpKind::BatchNorm,
                        name: format!("{name}/bn"),
                        out: out.clone(),
                        flops: 4.0 * elem_flops,
                        param_bytes: (4 * out.0[3]) as u64 * 4,
                        activation_bytes: Some(out.bytes()),
                    },
                    &[conv],
                );
                self.b.compute(OpKind::Relu, format!("{name}/relu"), out, elem_flops, &[bn])
            }
        }
    }

    fn pool(&mut self, kind: OpKind, name: &str, input: NodeId, out: TensorShape) -> NodeId {
        let flops = out.num_elements() as f64 * 9.0 * TRAIN_FLOPS_FACTOR;
        self.b.compute(kind, name, out, flops, &[input])
    }

    fn concat(&mut self, name: &str, inputs: &[NodeId], out: TensorShape) -> NodeId {
        self.b.compute(OpKind::Concat, name, out, 0.0, inputs)
    }
}

/// Inception-A module (35×35 grid): 1×1, 5×5, double-3×3 and pool
/// branches.
fn inception_a(c: &mut Ctx, name: &str, input: NodeId, cin: usize, pool_c: usize) -> NodeId {
    let hw = (35, 35);
    let b1 = c.conv(&format!("{name}/b1x1"), input, (1, 1), cin, 64, hw);
    let b5a = c.conv(&format!("{name}/b5x5_1"), input, (1, 1), cin, 48, hw);
    let b5b = c.conv(&format!("{name}/b5x5_2"), b5a, (5, 5), 48, 64, hw);
    let b3a = c.conv(&format!("{name}/b3x3_1"), input, (1, 1), cin, 64, hw);
    let b3b = c.conv(&format!("{name}/b3x3_2"), b3a, (3, 3), 64, 96, hw);
    let b3c = c.conv(&format!("{name}/b3x3_3"), b3b, (3, 3), 96, 96, hw);
    let bp = c.pool(OpKind::AvgPool, &format!("{name}/pool"), input, shape![BATCH, 35, 35, cin]);
    let bpc = c.conv(&format!("{name}/pool_proj"), bp, (1, 1), cin, pool_c, hw);
    let cout = 64 + 64 + 96 + pool_c;
    c.concat(&format!("{name}/concat"), &[b1, b5b, b3c, bpc], shape![BATCH, 35, 35, cout])
}

/// Reduction-A module (35×35 → 17×17).
fn reduction_a(c: &mut Ctx, name: &str, input: NodeId, cin: usize) -> NodeId {
    let b3 = c.conv(&format!("{name}/b3x3"), input, (3, 3), cin, 384, (17, 17));
    let d1 = c.conv(&format!("{name}/d3x3_1"), input, (1, 1), cin, 64, (35, 35));
    let d2 = c.conv(&format!("{name}/d3x3_2"), d1, (3, 3), 64, 96, (35, 35));
    let d3 = c.conv(&format!("{name}/d3x3_3"), d2, (3, 3), 96, 96, (17, 17));
    let p = c.pool(OpKind::MaxPool, &format!("{name}/pool"), input, shape![BATCH, 17, 17, cin]);
    let cout = 384 + 96 + cin;
    c.concat(&format!("{name}/concat"), &[b3, d3, p], shape![BATCH, 17, 17, cout])
}

/// Inception-B module (17×17 grid) with 1×7/7×1 factorized convs.
fn inception_b(c: &mut Ctx, name: &str, input: NodeId, cin: usize, mid: usize) -> NodeId {
    let hw = (17, 17);
    let b1 = c.conv(&format!("{name}/b1x1"), input, (1, 1), cin, 192, hw);
    let s1 = c.conv(&format!("{name}/b7_1"), input, (1, 1), cin, mid, hw);
    let s2 = c.conv(&format!("{name}/b7_2"), s1, (1, 7), mid, mid, hw);
    let s3 = c.conv(&format!("{name}/b7_3"), s2, (7, 1), mid, 192, hw);
    let d1 = c.conv(&format!("{name}/d7_1"), input, (1, 1), cin, mid, hw);
    let d2 = c.conv(&format!("{name}/d7_2"), d1, (7, 1), mid, mid, hw);
    let d3 = c.conv(&format!("{name}/d7_3"), d2, (1, 7), mid, mid, hw);
    let d4 = c.conv(&format!("{name}/d7_4"), d3, (7, 1), mid, mid, hw);
    let d5 = c.conv(&format!("{name}/d7_5"), d4, (1, 7), mid, 192, hw);
    let p = c.pool(OpKind::AvgPool, &format!("{name}/pool"), input, shape![BATCH, 17, 17, cin]);
    let pc = c.conv(&format!("{name}/pool_proj"), p, (1, 1), cin, 192, hw);
    c.concat(&format!("{name}/concat"), &[b1, s3, d5, pc], shape![BATCH, 17, 17, 768])
}

/// Reduction-B module (17×17 → 8×8).
fn reduction_b(c: &mut Ctx, name: &str, input: NodeId, cin: usize) -> NodeId {
    let a1 = c.conv(&format!("{name}/a_1"), input, (1, 1), cin, 192, (17, 17));
    let a2 = c.conv(&format!("{name}/a_2"), a1, (3, 3), 192, 320, (8, 8));
    let b1 = c.conv(&format!("{name}/b_1"), input, (1, 1), cin, 192, (17, 17));
    let b2 = c.conv(&format!("{name}/b_2"), b1, (1, 7), 192, 192, (17, 17));
    let b3 = c.conv(&format!("{name}/b_3"), b2, (7, 1), 192, 192, (17, 17));
    let b4 = c.conv(&format!("{name}/b_4"), b3, (3, 3), 192, 192, (8, 8));
    let p = c.pool(OpKind::MaxPool, &format!("{name}/pool"), input, shape![BATCH, 8, 8, cin]);
    let cout = 320 + 192 + cin;
    c.concat(&format!("{name}/concat"), &[a2, b4, p], shape![BATCH, 8, 8, cout])
}

/// Inception-C module (8×8 grid) with split 1×3/3×1 branches.
fn inception_c(c: &mut Ctx, name: &str, input: NodeId, cin: usize) -> NodeId {
    let hw = (8, 8);
    let b1 = c.conv(&format!("{name}/b1x1"), input, (1, 1), cin, 320, hw);
    let m = c.conv(&format!("{name}/m_1"), input, (1, 1), cin, 384, hw);
    let m_a = c.conv(&format!("{name}/m_1x3"), m, (1, 3), 384, 384, hw);
    let m_b = c.conv(&format!("{name}/m_3x1"), m, (3, 1), 384, 384, hw);
    let d1 = c.conv(&format!("{name}/d_1"), input, (1, 1), cin, 448, hw);
    let d2 = c.conv(&format!("{name}/d_3x3"), d1, (3, 3), 448, 384, hw);
    let d_a = c.conv(&format!("{name}/d_1x3"), d2, (1, 3), 384, 384, hw);
    let d_b = c.conv(&format!("{name}/d_3x1"), d2, (3, 1), 384, 384, hw);
    let p = c.pool(OpKind::AvgPool, &format!("{name}/pool"), input, shape![BATCH, 8, 8, cin]);
    let pc = c.conv(&format!("{name}/pool_proj"), p, (1, 1), cin, 192, hw);
    c.concat(&format!("{name}/concat"), &[b1, m_a, m_b, d_a, d_b, pc], shape![BATCH, 8, 8, 2048])
}

/// Build the Inception-V3 graph.
pub fn build(profile: Profile) -> CompGraph {
    let mut c = Ctx { b: GraphBuilder::new("inception_v3"), profile, conv_count: 0 };

    // Host-side input pipeline (CPU-only, as in TF-Slim).
    let pipeline = c.b.add(
        crate::builder::NodeSpec {
            kind: OpKind::DataPipeline,
            name: "input/pipeline".into(),
            out: shape![BATCH, 299, 299, 3],
            flops: 5e6,
            param_bytes: 0,
            activation_bytes: Some(4 << 20),
        },
        &[],
    );
    let input = c.b.plumb(OpKind::Input, "input", shape![BATCH, 299, 299, 3], &[pipeline]);

    // Stem.
    let s1 = c.conv("stem/conv1", input, (3, 3), 3, 32, (149, 149));
    let s2 = c.conv("stem/conv2", s1, (3, 3), 32, 32, (147, 147));
    let s3 = c.conv("stem/conv3", s2, (3, 3), 32, 64, (147, 147));
    let p1 = c.pool(OpKind::MaxPool, "stem/pool1", s3, shape![BATCH, 73, 73, 64]);
    let s4 = c.conv("stem/conv4", p1, (1, 1), 64, 80, (73, 73));
    let s5 = c.conv("stem/conv5", s4, (3, 3), 80, 192, (71, 71));
    let p2 = c.pool(OpKind::MaxPool, "stem/pool2", s5, shape![BATCH, 35, 35, 192]);

    // Inception blocks.
    let a1 = inception_a(&mut c, "mixed_5b", p2, 192, 32);
    let a2 = inception_a(&mut c, "mixed_5c", a1, 256, 64);
    let a3 = inception_a(&mut c, "mixed_5d", a2, 288, 64);
    let ra = reduction_a(&mut c, "mixed_6a", a3, 288);
    let b1 = inception_b(&mut c, "mixed_6b", ra, 768, 128);
    let b2 = inception_b(&mut c, "mixed_6c", b1, 768, 160);
    let b3 = inception_b(&mut c, "mixed_6d", b2, 768, 160);
    let b4 = inception_b(&mut c, "mixed_6e", b3, 768, 192);
    let rb = reduction_b(&mut c, "mixed_7a", b4, 768);
    let c1 = inception_c(&mut c, "mixed_7b", rb, 1280);
    let c2 = inception_c(&mut c, "mixed_7c", c1, 2048);

    // Head.
    let gap = c.pool(OpKind::AvgPool, "head/gap", c2, shape![BATCH, 1, 1, 2048]);
    let fc = c.b.layer(
        OpKind::MatMul,
        "head/fc",
        shape![BATCH, 1000],
        2.0 * 2048.0 * 1000.0 * BATCH as f64 * TRAIN_FLOPS_FACTOR,
        (2048 * 1000 + 1000) as u64 * 4,
        &[gap],
    );
    let sm = c.b.compute(
        OpKind::Softmax,
        "head/softmax",
        shape![BATCH, 1000],
        (3 * 1000 * BATCH) as f64,
        &[fc],
    );
    let loss = c.b.compute(OpKind::Loss, "head/loss", shape![1], 1000.0, &[sm]);
    c.b.layer(
        OpKind::ApplyGradient,
        "train/apply_gradients",
        shape![1],
        2.4e7 * TRAIN_FLOPS_FACTOR, // touch every parameter
        0,
        &[loss],
    );

    c.b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_flops_matches_known_model() {
        // Inception-V3 forward at batch 1 is ~5.7 GMACs = ~11.4 GFLOP
        // (2 FLOPs per multiply-accumulate); training (×3) should land
        // in [25e9, 45e9].
        let g = build(Profile::Reduced);
        let total = g.total_flops();
        assert!(
            (25e9..45e9).contains(&total),
            "inception training flops {total:.3e} out of expected range"
        );
    }

    #[test]
    fn parameter_bytes_match_known_model() {
        // ~23.8M parameters → ~95 MB.
        let g = build(Profile::Reduced);
        let p = g.total_param_bytes() as f64 / (1 << 20) as f64;
        assert!((70.0..130.0).contains(&p), "inception params {p} MB");
    }

    #[test]
    fn fits_on_a_single_gpu() {
        // The whole point of this benchmark: total memory ≪ 12 GB.
        let g = build(Profile::Reduced);
        assert!(g.total_memory_bytes() < 6 << 30, "{}", g.total_memory_bytes());
    }

    #[test]
    fn has_cpu_only_pipeline_op() {
        let g = build(Profile::Reduced);
        assert!(g.nodes().iter().any(|n| !n.gpu_compatible));
    }

    #[test]
    fn paper_profile_triples_conv_ops() {
        let r = build(Profile::Reduced);
        let p = build(Profile::Paper);
        assert!(p.num_nodes() > 2 * r.num_nodes());
        assert!(p.nodes().iter().any(|n| n.kind == OpKind::BatchNorm));
        assert!(r.nodes().iter().all(|n| n.kind != OpKind::BatchNorm));
    }

    #[test]
    fn node_count_in_expected_range() {
        let r = build(Profile::Reduced);
        assert!((100..220).contains(&r.num_nodes()), "reduced nodes {}", r.num_nodes());
        let p = build(Profile::Paper);
        assert!((280..600).contains(&p.num_nodes()), "paper nodes {}", p.num_nodes());
    }
}
