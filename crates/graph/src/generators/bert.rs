//! BERT-Base (Devlin et al., 2019) — benchmark 3, the hardest workload.
//!
//! §4.1: "We use BERT-Base with a maximum sequence length of 384 and a
//! batch size of 24, which requires about 24GB GPU memory. Under this
//! setting, the model has to be split across multiple GPUs and the
//! communication between GPUs becomes the bottleneck."
//!
//! 12 transformer layers; [`Profile::Reduced`] emits ~11 fused ops per
//! layer (QKV, attention score/softmax/context, output projection,
//! residual+LN, FFN×2 with GELU, residual+LN), [`Profile::Paper`] emits
//! unfused ops (separate Q/K/V, biases, transposes, dropouts) at TF
//! granularity. The MLM head predicts masked positions only.

use crate::builder::NodeSpec;
use crate::generators::{Profile, TRAIN_FLOPS_FACTOR};
use crate::graph::{CompGraph, NodeId};
use crate::op::OpKind;
use crate::shape;
use crate::GraphBuilder;

const BATCH: usize = 24;
const SEQ: usize = 384;
const HIDDEN: usize = 768;
const HEADS: usize = 12;
const FFN: usize = 3072;
const LAYERS: usize = 12;
const VOCAB: usize = 30_522;
const MASKED: usize = 58; // ~15% of 384
/// Activation-memory calibration (gradient buffers + Adam slots).
const MEM_SCALE: u64 = 3;

fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64 * TRAIN_FLOPS_FACTOR
}

struct LayerCtx<'a> {
    b: &'a mut GraphBuilder,
    profile: Profile,
}

impl LayerCtx<'_> {
    fn dense(
        &mut self,
        name: String,
        input: NodeId,
        rows: usize,
        k: usize,
        n: usize,
        out: crate::graph::TensorShape,
    ) -> NodeId {
        let act = out.bytes() * MEM_SCALE;
        let m = self.b.add(
            NodeSpec {
                kind: OpKind::MatMul,
                name: name.clone(),
                out: out.clone(),
                flops: matmul_flops(rows, k, n),
                param_bytes: (k * n + n) as u64 * 4,
                activation_bytes: Some(act),
            },
            &[input],
        );
        if self.profile == Profile::Paper {
            // Unfused bias add, as in the TF graph (in-place: no extra
            // live memory).
            self.b.add(
                NodeSpec {
                    kind: OpKind::Add,
                    name: format!("{name}/bias"),
                    out: out.clone(),
                    flops: out.num_elements() as f64 * TRAIN_FLOPS_FACTOR,
                    param_bytes: 0,
                    activation_bytes: Some(out.bytes() / 8),
                },
                &[m],
            )
        } else {
            m
        }
    }
}

/// In-place plumbing op (transpose/dropout): negligible live memory.
fn plumb_inplace(
    b: &mut GraphBuilder,
    kind: OpKind,
    name: String,
    out: crate::graph::TensorShape,
    deps: &[NodeId],
) -> NodeId {
    let act = out.bytes() / 8;
    b.add(
        NodeSpec { kind, name, out, flops: 0.0, param_bytes: 0, activation_bytes: Some(act) },
        deps,
    )
}

fn transformer_layer(c: &mut LayerCtx<'_>, l: usize, input: NodeId) -> NodeId {
    let tok = BATCH * SEQ;
    let hid_shape = shape![BATCH, SEQ, HIDDEN];
    let paper = c.profile == Profile::Paper;

    // Attention block.
    let (q, k, v) = if paper {
        let q = c.dense(format!("l{l}/attn/q"), input, tok, HIDDEN, HIDDEN, hid_shape.clone());
        let k = c.dense(format!("l{l}/attn/k"), input, tok, HIDDEN, HIDDEN, hid_shape.clone());
        let v = c.dense(format!("l{l}/attn/v"), input, tok, HIDDEN, HIDDEN, hid_shape.clone());
        let qt = plumb_inplace(
            c.b,
            OpKind::Transpose,
            format!("l{l}/attn/q_t"),
            hid_shape.clone(),
            &[q],
        );
        let kt = plumb_inplace(
            c.b,
            OpKind::Transpose,
            format!("l{l}/attn/k_t"),
            hid_shape.clone(),
            &[k],
        );
        let vt = plumb_inplace(
            c.b,
            OpKind::Transpose,
            format!("l{l}/attn/v_t"),
            hid_shape.clone(),
            &[v],
        );
        (qt, kt, vt)
    } else {
        let qkv_shape = shape![BATCH, SEQ, 3 * HIDDEN];
        let qkv = c.dense(format!("l{l}/attn/qkv"), input, tok, HIDDEN, 3 * HIDDEN, qkv_shape);
        (qkv, qkv, qkv)
    };

    let score_shape = shape![BATCH, HEADS, SEQ, SEQ];
    let score_deps: Vec<NodeId> = if paper { vec![q, k] } else { vec![q] };
    let score = c.b.add(
        NodeSpec {
            kind: OpKind::AttentionScore,
            name: format!("l{l}/attn/score"),
            out: score_shape.clone(),
            flops: matmul_flops(BATCH * HEADS * SEQ, HIDDEN / HEADS, SEQ),
            param_bytes: 0,
            activation_bytes: Some(score_shape.bytes() * MEM_SCALE),
        },
        &score_deps,
    );
    let sm = c.b.add(
        NodeSpec {
            kind: OpKind::Softmax,
            name: format!("l{l}/attn/softmax"),
            out: score_shape.clone(),
            flops: score_shape.num_elements() as f64 * 3.0 * TRAIN_FLOPS_FACTOR,
            param_bytes: 0,
            activation_bytes: Some(score_shape.bytes() * MEM_SCALE),
        },
        &[score],
    );
    let ctx_deps: Vec<NodeId> = vec![sm, v];
    let ctx = c.b.add(
        NodeSpec {
            kind: OpKind::AttentionContext,
            name: format!("l{l}/attn/context"),
            out: hid_shape.clone(),
            flops: matmul_flops(BATCH * HEADS * SEQ, SEQ, HIDDEN / HEADS),
            param_bytes: 0,
            activation_bytes: Some(hid_shape.bytes() * MEM_SCALE),
        },
        &ctx_deps,
    );
    let proj = c.dense(format!("l{l}/attn/out"), ctx, tok, HIDDEN, HIDDEN, hid_shape.clone());
    let drop1 = if paper {
        plumb_inplace(
            c.b,
            OpKind::Dropout,
            format!("l{l}/attn/dropout"),
            hid_shape.clone(),
            &[proj],
        )
    } else {
        proj
    };
    let ln1 = c.b.add(
        NodeSpec {
            kind: OpKind::LayerNorm,
            name: format!("l{l}/ln1"),
            out: hid_shape.clone(),
            flops: hid_shape.num_elements() as f64 * 5.0 * TRAIN_FLOPS_FACTOR,
            param_bytes: (2 * HIDDEN) as u64 * 4,
            activation_bytes: Some(hid_shape.bytes() * MEM_SCALE),
        },
        &[drop1, input],
    );

    // FFN block.
    let ffn_shape = shape![BATCH, SEQ, FFN];
    let f1 = c.dense(format!("l{l}/ffn/fc1"), ln1, tok, HIDDEN, FFN, ffn_shape.clone());
    let gelu = c.b.compute(
        OpKind::Gelu,
        format!("l{l}/ffn/gelu"),
        ffn_shape.clone(),
        ffn_shape.num_elements() as f64 * 8.0 * TRAIN_FLOPS_FACTOR,
        &[f1],
    );
    let f2 = c.dense(format!("l{l}/ffn/fc2"), gelu, tok, FFN, HIDDEN, hid_shape.clone());
    let drop2 = if paper {
        plumb_inplace(c.b, OpKind::Dropout, format!("l{l}/ffn/dropout"), hid_shape.clone(), &[f2])
    } else {
        f2
    };
    c.b.add(
        NodeSpec {
            kind: OpKind::LayerNorm,
            name: format!("l{l}/ln2"),
            out: hid_shape.clone(),
            flops: hid_shape.num_elements() as f64 * 5.0 * TRAIN_FLOPS_FACTOR,
            param_bytes: (2 * HIDDEN) as u64 * 4,
            activation_bytes: Some(hid_shape.bytes() * MEM_SCALE),
        },
        &[drop2, ln1],
    )
}

/// Build the BERT-Base graph.
pub fn build(profile: Profile) -> CompGraph {
    let mut b = GraphBuilder::new("bert_base");
    let hid_shape = shape![BATCH, SEQ, HIDDEN];

    let pre = b.add(
        NodeSpec {
            kind: OpKind::Preprocess,
            name: "input/tokenize".into(),
            out: shape![BATCH, SEQ],
            flops: 2e7,
            param_bytes: 0,
            activation_bytes: Some(16 << 20),
        },
        &[],
    );
    let input = b.plumb(OpKind::Input, "input/ids", shape![BATCH, SEQ], &[pre]);
    let emb = b.layer(
        OpKind::Embedding,
        "embeddings/lookup",
        hid_shape.clone(),
        (BATCH * SEQ) as f64 * 3.0 * TRAIN_FLOPS_FACTOR,
        ((VOCAB + 512 + 2) * HIDDEN) as u64 * 4,
        &[input],
    );
    let emb_ln = b.layer(
        OpKind::LayerNorm,
        "embeddings/ln",
        hid_shape.clone(),
        hid_shape.num_elements() as f64 * 5.0 * TRAIN_FLOPS_FACTOR,
        (2 * HIDDEN) as u64 * 4,
        &[emb],
    );

    let mut cur = emb_ln;
    {
        let mut ctx = LayerCtx { b: &mut b, profile };
        for l in 0..LAYERS {
            cur = transformer_layer(&mut ctx, l, cur);
        }
    }

    // MLM head over masked positions.
    let gathered = b.plumb(OpKind::Split, "mlm/gather", shape![BATCH, MASKED, HIDDEN], &[cur]);
    let transform = b.layer(
        OpKind::MatMul,
        "mlm/transform",
        shape![BATCH, MASKED, HIDDEN],
        matmul_flops(BATCH * MASKED, HIDDEN, HIDDEN),
        (HIDDEN * HIDDEN + HIDDEN) as u64 * 4,
        &[gathered],
    );
    let logits_shape = shape![BATCH, MASKED, VOCAB];
    let logits = b.add(
        NodeSpec {
            kind: OpKind::MatMul,
            name: "mlm/logits".into(),
            out: logits_shape.clone(),
            flops: matmul_flops(BATCH * MASKED, HIDDEN, VOCAB),
            param_bytes: 0, // tied to embedding table
            activation_bytes: Some(logits_shape.bytes() * 3),
        },
        &[transform],
    );
    let sm = b.compute(
        OpKind::Softmax,
        "mlm/softmax",
        logits_shape.clone(),
        logits_shape.num_elements() as f64 * 3.0,
        &[logits],
    );
    let loss =
        b.compute(OpKind::Loss, "mlm/loss", shape![1], logits_shape.num_elements() as f64, &[sm]);
    b.layer(
        OpKind::ApplyGradient,
        "train/apply_gradients",
        shape![1],
        1.1e8 * TRAIN_FLOPS_FACTOR, // touch every parameter
        0,
        &[loss],
    );

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_around_24_gb() {
        let g = build(Profile::Reduced);
        let gb = g.total_memory_bytes() as f64 / (1u64 << 30) as f64;
        assert!((20.0..32.0).contains(&gb), "BERT memory {gb:.1} GB, expected ~24");
    }

    #[test]
    fn training_flops_match_hand_calculation() {
        // ~1.7 TFLOP forward → ~5.2 TFLOP training (+ MLM head).
        let g = build(Profile::Reduced);
        let t = g.total_flops();
        assert!((4e12..8e12).contains(&t), "BERT flops {t:.3e}");
    }

    #[test]
    fn twelve_layers_chained() {
        let g = build(Profile::Reduced);
        let order = g.topo_order().expect("acyclic");
        let pos = |name: &str| {
            let id = g.nodes().iter().position(|n| n.name == name).expect(name);
            order.iter().position(|&x| x == id).expect("in order")
        };
        for l in 0..LAYERS - 1 {
            assert!(pos(&format!("l{l}/ln2")) < pos(&format!("l{}/ln2", l + 1)));
        }
    }

    #[test]
    fn residual_edges_exist() {
        // ln1 must consume both the attention output and the block input.
        let g = build(Profile::Reduced);
        let ln1 = g.nodes().iter().position(|n| n.name == "l3/ln1").expect("l3/ln1");
        let indeg = g.in_degrees()[ln1];
        assert_eq!(indeg, 2);
    }

    #[test]
    fn node_counts() {
        let r = build(Profile::Reduced);
        assert!((120..240).contains(&r.num_nodes()), "reduced {}", r.num_nodes());
        let p = build(Profile::Paper);
        assert!((250..500).contains(&p.num_nodes()), "paper {}", p.num_nodes());
    }

    #[test]
    fn inter_layer_tensors_are_large() {
        // "communication between GPUs becomes the bottleneck" — the
        // tensors crossing layer boundaries are ~28 MB each.
        let g = build(Profile::Reduced);
        let ln2 = g.nodes().iter().position(|n| n.name == "l0/ln2").expect("l0/ln2");
        let e = g.edges().iter().find(|e| e.src == ln2).expect("outgoing edge");
        assert!(e.bytes > 20 << 20, "{}", e.bytes);
    }
}
