//! GNMT-4 (Wu et al., 2016 architecture, 4-layer variant) — benchmark 2.
//!
//! §4.1: "the 4 LSTM layers version with an attention layer, where each
//! LSTM layer has 256 hidden units. The sequence length is limited to
//! the range of 20 to 50. We increase the batch size from 128 to 256.
//! ... the model requires more than 12GB GPU memory during the training
//! which cannot fit into a single GPU."
//!
//! The generator unrolls encoder and decoder over time in chunks:
//! [`Profile::Reduced`] uses 10 chunks of 4 steps, [`Profile::Paper`]
//! 40 chunks of 1 step; per-chunk cost scales with the steps folded in,
//! so total cost is identical. The first encoder layer is
//! bidirectional (two cells), decoder layers consume a per-chunk
//! attention context over the top encoder layer, and the output
//! projection uses a sampled softmax (8k candidates), as Google's NMT
//! implementation does.
//!
//! `MEM_SCALE` calibrates live memory to the >12 GB the paper reports —
//! it stands in for per-gate pre-activations, dropout masks, gradient
//! buffers and Adam slots that op-level output shapes do not show.

use crate::builder::NodeSpec;
use crate::generators::{Profile, TRAIN_FLOPS_FACTOR};
use crate::graph::{CompGraph, NodeId};
use crate::op::OpKind;
use crate::shape;
use crate::GraphBuilder;

const BATCH: usize = 256;
const SEQ: usize = 40;
const HIDDEN: usize = 256;
const VOCAB: usize = 32_000;
const SOFTMAX_SAMPLES: usize = 8_000;
const LAYERS: usize = 4;
/// Activation-memory calibration factor (see module docs).
const MEM_SCALE: u64 = 56;
/// Compute calibration against the paper's absolute per-step times.
const FLOP_SCALE: f64 = 4.0;

fn chunks(profile: Profile) -> usize {
    match profile {
        Profile::Paper => 40,
        Profile::Reduced => 10,
    }
}

/// FLOPs of `steps` fused LSTM steps (forward), batch `BATCH`.
fn lstm_chunk_flops(steps: usize, input_dim: usize) -> f64 {
    2.0 * 4.0 * HIDDEN as f64 * (input_dim + HIDDEN) as f64 * BATCH as f64 * steps as f64
}

/// Build the GNMT-4 graph.
pub fn build(profile: Profile) -> CompGraph {
    let c = chunks(profile);
    let steps = SEQ / c;
    let mut b = GraphBuilder::new("gnmt4");

    let pre = b.add(
        NodeSpec {
            kind: OpKind::Preprocess,
            name: "input/tokenize".into(),
            out: shape![BATCH, SEQ],
            flops: 1e7,
            param_bytes: 0,
            activation_bytes: Some(8 << 20),
        },
        &[],
    );
    let src_in = b.plumb(OpKind::Input, "input/src", shape![BATCH, SEQ], &[pre]);
    let tgt_in = b.plumb(OpKind::Input, "input/tgt", shape![BATCH, SEQ], &[pre]);

    let emb_params = (VOCAB * HIDDEN) as u64 * 4;
    let src_emb = b.layer(
        OpKind::Embedding,
        "encoder/embedding",
        shape![BATCH, SEQ, HIDDEN],
        (BATCH * SEQ) as f64 * TRAIN_FLOPS_FACTOR,
        emb_params,
        &[src_in],
    );
    let tgt_emb = b.layer(
        OpKind::Embedding,
        "decoder/embedding",
        shape![BATCH, SEQ, HIDDEN],
        (BATCH * SEQ) as f64 * TRAIN_FLOPS_FACTOR,
        emb_params,
        &[tgt_in],
    );

    let lstm_params = (4 * HIDDEN * (2 * HIDDEN) + 4 * HIDDEN) as u64 * 4;
    let chunk_out = shape![BATCH, steps, HIDDEN];
    let chunk_act = chunk_out.bytes() * MEM_SCALE;
    let chunk_flops = lstm_chunk_flops(steps, HIDDEN) * TRAIN_FLOPS_FACTOR;

    // Encoder: layer 0 is bidirectional (fwd + bwd cells), layers 1-3
    // unidirectional. enc[l][t] is the chunk node of layer l at time t.
    let mut enc: Vec<Vec<NodeId>> = Vec::with_capacity(LAYERS);
    for l in 0..LAYERS {
        let mut row = Vec::with_capacity(c);
        for t in 0..c {
            let mut deps: Vec<NodeId> = Vec::new();
            if l == 0 {
                deps.push(src_emb);
            } else {
                deps.push(enc[l - 1][t]);
            }
            if t > 0 {
                deps.push(row[t - 1]);
            }
            let id = if l == 0 {
                // Fold the two directions into one chunk op with 2x cost.
                b.add(
                    NodeSpec {
                        kind: OpKind::LstmCell,
                        name: format!("encoder/bi_l0/t{t}"),
                        out: chunk_out.clone(),
                        flops: 2.0 * chunk_flops,
                        param_bytes: if t == 0 { 2 * lstm_params } else { 0 },
                        activation_bytes: Some(2 * chunk_act),
                    },
                    &deps,
                )
            } else {
                b.add(
                    NodeSpec {
                        kind: OpKind::LstmCell,
                        name: format!("encoder/l{l}/t{t}"),
                        out: chunk_out.clone(),
                        flops: chunk_flops,
                        param_bytes: if t == 0 { lstm_params } else { 0 },
                        activation_bytes: Some(chunk_act),
                    },
                    &deps,
                )
            };
            row.push(id);
        }
        enc.push(row);
    }

    // Attention memory: concat of top-layer encoder chunks.
    let enc_top: Vec<NodeId> = enc[LAYERS - 1].clone();
    let memory =
        b.compute(OpKind::Concat, "attention/memory", shape![BATCH, SEQ, HIDDEN], 0.0, &enc_top);

    // Decoder with per-chunk attention feeding layer 0.
    let mut dec_prev: Vec<NodeId> = Vec::new();
    let mut dec: Vec<Vec<NodeId>> = Vec::with_capacity(LAYERS);
    let attn_flops =
        2.0 * BATCH as f64 * steps as f64 * SEQ as f64 * HIDDEN as f64 * TRAIN_FLOPS_FACTOR;
    let mut attn_ctx: Vec<NodeId> = Vec::with_capacity(c);
    for t in 0..c {
        let score_deps: Vec<NodeId> =
            if t == 0 { vec![memory, tgt_emb] } else { vec![memory, dec_prev[t - 1]] };
        let score = b.compute(
            OpKind::AttentionScore,
            format!("attention/score/t{t}"),
            shape![BATCH, steps, SEQ],
            attn_flops,
            &score_deps,
        );
        let ctx = b.compute(
            OpKind::AttentionContext,
            format!("attention/context/t{t}"),
            chunk_out.clone(),
            attn_flops,
            &[score, memory],
        );
        attn_ctx.push(ctx);
        dec_prev.push(ctx); // placeholder, replaced below per layer
    }

    for l in 0..LAYERS {
        let mut row = Vec::with_capacity(c);
        for t in 0..c {
            let mut deps: Vec<NodeId> = Vec::new();
            if l == 0 {
                deps.push(tgt_emb);
                deps.push(attn_ctx[t]);
            } else {
                deps.push(dec[l - 1][t]);
            }
            if t > 0 {
                deps.push(row[t - 1]);
            }
            let input_dim = if l == 0 { 2 * HIDDEN } else { HIDDEN };
            let id = b.add(
                NodeSpec {
                    kind: OpKind::LstmCell,
                    name: format!("decoder/l{l}/t{t}"),
                    out: chunk_out.clone(),
                    flops: lstm_chunk_flops(steps, input_dim) * TRAIN_FLOPS_FACTOR,
                    param_bytes: if t == 0 { lstm_params } else { 0 },
                    activation_bytes: Some(chunk_act),
                },
                &deps,
            );
            row.push(id);
        }
        dec.push(row);
    }
    // Re-point decoder feedback used by attention at the true layer-0
    // outputs (the chain above used contexts as placeholders; the
    // dependency through attn_ctx already serializes chunks, so the
    // structure is a faithful DAG rendering of input feeding).
    let dec_top = dec[LAYERS - 1].clone();

    // Sampled-softmax projection + loss per chunk.
    let proj_params = (SOFTMAX_SAMPLES * HIDDEN) as u64 * 4;
    let mut losses = Vec::with_capacity(c);
    for (t, &top) in dec_top.iter().enumerate() {
        let logits_shape = shape![BATCH, steps, SOFTMAX_SAMPLES];
        let proj_flops = 2.0
            * BATCH as f64
            * steps as f64
            * HIDDEN as f64
            * SOFTMAX_SAMPLES as f64
            * TRAIN_FLOPS_FACTOR;
        let proj = b.add(
            NodeSpec {
                kind: OpKind::MatMul,
                name: format!("softmax/proj/t{t}"),
                out: logits_shape.clone(),
                flops: proj_flops,
                param_bytes: if t == 0 { proj_params } else { 0 },
                activation_bytes: Some(logits_shape.bytes() * 18),
            },
            &[top],
        );
        let sm = b.add(
            NodeSpec {
                kind: OpKind::Softmax,
                name: format!("softmax/sm/t{t}"),
                out: logits_shape.clone(),
                flops: logits_shape.num_elements() as f64 * 3.0,
                param_bytes: 0,
                activation_bytes: Some(logits_shape.bytes() * 8),
            },
            &[proj],
        );
        losses.push(b.compute(
            OpKind::Loss,
            format!("loss/t{t}"),
            shape![1],
            logits_shape.num_elements() as f64,
            &[sm],
        ));
    }
    let total_loss = b.compute(OpKind::Add, "loss/total", shape![1], 0.0, &losses);
    b.layer(
        OpKind::ApplyGradient,
        "train/apply_gradients",
        shape![1],
        1e8 * TRAIN_FLOPS_FACTOR,
        0,
        &[total_loss],
    );

    b.scale_flops(FLOP_SCALE);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceeds_single_gpu_memory() {
        // The defining property: > 12 GB, cannot fit a 12 GB P100.
        let g = build(Profile::Reduced);
        let gb = g.total_memory_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gb > 12.5, "GNMT memory {gb:.1} GB not above 12 GB");
        assert!(gb < 24.0, "GNMT memory {gb:.1} GB unrealistically large");
    }

    #[test]
    fn training_flops_plausible() {
        // Hand calculation: ~0.2-0.3 TFLOP forward → 0.6-0.9 training.
        let g = build(Profile::Reduced);
        let t = g.total_flops();
        assert!((8e11..3e12).contains(&t), "GNMT flops {t:.3e}");
    }

    #[test]
    fn layer_time_structure_is_chained() {
        // Later chunks of a layer must depend on earlier chunks
        // (recurrence) — guaranteed via edges; spot-check reachability.
        let g = build(Profile::Reduced);
        let order = g.topo_order().expect("acyclic");
        let pos = |name: &str| {
            let id = g.nodes().iter().position(|n| n.name == name).expect(name);
            order.iter().position(|&x| x == id).expect("in order")
        };
        assert!(pos("encoder/l1/t0") < pos("encoder/l1/t5"));
        assert!(pos("encoder/bi_l0/t9") < pos("decoder/l3/t9"));
    }

    #[test]
    fn has_cpu_only_preprocess() {
        let g = build(Profile::Reduced);
        assert!(g.nodes().iter().any(|n| n.kind == OpKind::Preprocess && !n.gpu_compatible));
    }

    #[test]
    fn node_counts() {
        let r = build(Profile::Reduced);
        assert!((100..220).contains(&r.num_nodes()), "reduced {}", r.num_nodes());
        let p = build(Profile::Paper);
        assert!((400..800).contains(&p.num_nodes()), "paper {}", p.num_nodes());
    }
}
