//! VGG16 (Simonyan & Zisserman, 2015) — Table-3 training workload.
//!
//! A plain 13-conv / 3-fc CNN at batch 32. Structurally "similar type"
//! to Inception-V3 (vision CNN) for the generalization experiments.

use crate::generators::{Profile, TRAIN_FLOPS_FACTOR};
use crate::graph::{CompGraph, NodeId};
use crate::op::OpKind;
use crate::shape;
use crate::GraphBuilder;

const BATCH: usize = 32;
const MEM_SCALE: u64 = 2;

/// VGG16 convolution plan: (name, out_channels, out_hw, convs_in_block).
const BLOCKS: [(&str, usize, usize, usize); 5] = [
    ("block1", 64, 224, 2),
    ("block2", 128, 112, 2),
    ("block3", 256, 56, 3),
    ("block4", 512, 28, 3),
    ("block5", 512, 14, 3),
];

/// Build the VGG16 graph.
pub fn build(profile: Profile) -> CompGraph {
    let mut b = GraphBuilder::new("vgg16");
    let pipeline = b.add(
        crate::builder::NodeSpec {
            kind: OpKind::DataPipeline,
            name: "input/pipeline".into(),
            out: shape![BATCH, 224, 224, 3],
            flops: 5e7,
            param_bytes: 0,
            activation_bytes: Some(64 << 20),
        },
        &[],
    );
    let mut cur: NodeId = b.plumb(OpKind::Input, "input", shape![BATCH, 224, 224, 3], &[pipeline]);
    let mut cin = 3usize;

    for (bname, cout, hw, n_convs) in BLOCKS {
        for i in 0..n_convs {
            let out = shape![BATCH, hw, hw, cout];
            let fwd = 2.0 * 9.0 * cin as f64 * cout as f64 * (hw * hw) as f64 * BATCH as f64;
            let conv = b.add(
                crate::builder::NodeSpec {
                    kind: OpKind::Conv2d,
                    name: format!("{bname}/conv{}", i + 1),
                    out: out.clone(),
                    flops: fwd * TRAIN_FLOPS_FACTOR,
                    param_bytes: (9 * cin * cout + cout) as u64 * 4,
                    activation_bytes: Some(out.bytes() * MEM_SCALE),
                },
                &[cur],
            );
            cur = if profile == Profile::Paper {
                // In-place ReLU: negligible extra live memory.
                b.add(
                    crate::builder::NodeSpec {
                        kind: OpKind::Relu,
                        name: format!("{bname}/relu{}", i + 1),
                        out: out.clone(),
                        flops: out.num_elements() as f64 * TRAIN_FLOPS_FACTOR,
                        param_bytes: 0,
                        activation_bytes: Some(out.bytes() / 8),
                    },
                    &[conv],
                )
            } else {
                conv
            };
            cin = cout;
        }
        let pooled = shape![BATCH, hw / 2, hw / 2, cin];
        cur = b.compute(
            OpKind::MaxPool,
            format!("{bname}/pool"),
            pooled.clone(),
            pooled.num_elements() as f64 * 4.0 * TRAIN_FLOPS_FACTOR,
            &[cur],
        );
    }

    let flat = b.plumb(OpKind::Reshape, "flatten", shape![BATCH, 7 * 7 * 512], &[cur]);
    let mut fc_in = 7 * 7 * 512;
    let mut fc_cur = flat;
    for (i, width) in [4096usize, 4096, 1000].into_iter().enumerate() {
        let out = shape![BATCH, width];
        fc_cur = b.add(
            crate::builder::NodeSpec {
                kind: OpKind::MatMul,
                name: format!("fc{}", i + 1),
                out: out.clone(),
                flops: 2.0 * fc_in as f64 * width as f64 * BATCH as f64 * TRAIN_FLOPS_FACTOR,
                param_bytes: (fc_in * width + width) as u64 * 4,
                activation_bytes: Some(out.bytes() * MEM_SCALE),
            },
            &[fc_cur],
        );
        fc_in = width;
    }
    let sm = b.compute(
        OpKind::Softmax,
        "softmax",
        shape![BATCH, 1000],
        (3 * BATCH * 1000) as f64,
        &[fc_cur],
    );
    let loss = b.compute(OpKind::Loss, "loss", shape![1], (BATCH * 1000) as f64, &[sm]);
    b.layer(
        OpKind::ApplyGradient,
        "train/apply_gradients",
        shape![1],
        1.38e8 * TRAIN_FLOPS_FACTOR,
        0,
        &[loss],
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_are_vgg_scale() {
        // VGG16 has ~138M parameters → ~552 MB.
        let g = build(Profile::Reduced);
        let mb = g.total_param_bytes() as f64 / (1 << 20) as f64;
        assert!((450.0..650.0).contains(&mb), "VGG params {mb} MB");
    }

    #[test]
    fn flops_are_vgg_scale() {
        // 15.5 GMACs = 31 GFLOP/image forward × 32 × 3 ≈ 3 TFLOP.
        let g = build(Profile::Reduced);
        let t = g.total_flops();
        assert!((2e12..4e12).contains(&t), "VGG flops {t:.3e}");
    }

    #[test]
    fn fits_one_gpu() {
        let g = build(Profile::Reduced);
        assert!(g.total_memory_bytes() < 11 << 30);
    }

    #[test]
    fn is_a_simple_chain() {
        // Every node except endpoints has in-degree ≤ 1 out-degree ≤ 1.
        let g = build(Profile::Reduced);
        assert!(g.in_degrees().iter().all(|&d| d <= 1));
        assert!(g.out_degrees().iter().all(|&d| d <= 1));
    }
}
