//! Workload generators.
//!
//! Each module builds an op-level [`CompGraph`](crate::CompGraph) for
//! one of the paper's benchmark or generalization workloads. Costs
//! (FLOPs, parameter bytes, activation bytes) are computed from the
//! real architectures' dimensions; two calibration constants per
//! generator (`flop_scale`, `mem_scale`) absorb framework overheads the
//! op-level shapes cannot capture (optimizer slots, workspace, cuDNN
//! autotuning buffers) so that the simulated footprints match what the
//! paper reports (e.g. GNMT-4 "requires more than 12GB", BERT "about
//! 24GB").
//!
//! Two structural profiles are available:
//!
//! * [`Profile::Paper`] — fine-grained graphs (hundreds to thousands of
//!   ops), matching the paper's experimental scale.
//! * [`Profile::Reduced`] — coarser chunking with *identical total
//!   cost*; the default for tests and quick experiments on a CPU-only
//!   box.

pub mod bert;
pub mod gnmt;
pub mod gpt2;
pub mod inception;
pub mod resnet;
pub mod seq2seq;
pub mod transformer;
pub mod vgg;

use crate::CompGraph;

/// Structural granularity of a generated graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Fine-grained, paper-scale op counts.
    Paper,
    /// Coarser chunking, identical total cost.
    Reduced,
}

impl Profile {
    /// Canonical lowercase name (`"paper"` / `"reduced"`), stable for
    /// wire protocols and config files.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Paper => "paper",
            Profile::Reduced => "reduced",
        }
    }

    /// Parse a canonical name back into a profile.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "paper" => Some(Profile::Paper),
            "reduced" => Some(Profile::Reduced),
            _ => None,
        }
    }
}

/// The workloads used in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Inception-V3, batch 1 (benchmark 1).
    InceptionV3,
    /// GNMT 4-layer, batch 256 (benchmark 2).
    Gnmt4,
    /// BERT-Base, seq 384, batch 24 (benchmark 3).
    BertBase,
    /// VGG16 (Table 3 training workload).
    Vgg16,
    /// Plain seq2seq (Table 3 training workload).
    Seq2Seq,
    /// Small Transformer (Table 3 training workload).
    Transformer,
    /// ResNet-50 (extra vision workload, this repo's addition).
    Resnet50,
    /// GPT-2 Small (extra language workload, this repo's addition).
    Gpt2Small,
}

impl Workload {
    /// All workloads.
    pub const ALL: [Workload; 8] = [
        Workload::InceptionV3,
        Workload::Gnmt4,
        Workload::BertBase,
        Workload::Vgg16,
        Workload::Seq2Seq,
        Workload::Transformer,
        Workload::Resnet50,
        Workload::Gpt2Small,
    ];

    /// Parse a workload from its canonical name or the short aliases
    /// the CLI accepts (`"inception"`, `"gnmt"`, …). The single
    /// name→workload mapping shared by the CLI and the fleet wire
    /// protocol.
    pub fn parse(s: &str) -> Option<Workload> {
        Some(match s {
            "inception" | "inception_v3" => Workload::InceptionV3,
            "gnmt" | "gnmt4" => Workload::Gnmt4,
            "bert" | "bert_base" => Workload::BertBase,
            "vgg" | "vgg16" => Workload::Vgg16,
            "seq2seq" => Workload::Seq2Seq,
            "transformer" => Workload::Transformer,
            "resnet" | "resnet50" => Workload::Resnet50,
            "gpt2" | "gpt2_small" => Workload::Gpt2Small,
            _ => return None,
        })
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::InceptionV3 => "inception_v3",
            Workload::Gnmt4 => "gnmt4",
            Workload::BertBase => "bert_base",
            Workload::Vgg16 => "vgg16",
            Workload::Seq2Seq => "seq2seq",
            Workload::Transformer => "transformer",
            Workload::Resnet50 => "resnet50",
            Workload::Gpt2Small => "gpt2_small",
        }
    }

    /// Build the workload graph.
    pub fn build(self, profile: Profile) -> CompGraph {
        match self {
            Workload::InceptionV3 => inception::build(profile),
            Workload::Gnmt4 => gnmt::build(profile),
            Workload::BertBase => bert::build(profile),
            Workload::Vgg16 => vgg::build(profile),
            Workload::Seq2Seq => seq2seq::build(profile),
            Workload::Transformer => transformer::build(profile),
            Workload::Resnet50 => resnet::build(profile),
            Workload::Gpt2Small => gpt2::build(profile),
        }
    }
}

/// Forward→training FLOP multiplier (forward + backward ≈ 3× forward).
pub(crate) const TRAIN_FLOPS_FACTOR: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_valid_graphs() {
        for w in Workload::ALL {
            for p in [Profile::Reduced, Profile::Paper] {
                let g = w.build(p);
                assert!(g.validate().is_ok(), "{} {:?}", w.name(), p);
                assert!(g.num_nodes() > 10, "{} {:?} too small", w.name(), p);
                assert!(g.num_edges() >= g.num_nodes() - 2, "{} {:?} too sparse", w.name(), p);
            }
        }
    }

    #[test]
    fn profiles_preserve_total_cost() {
        for w in Workload::ALL {
            let r = w.build(Profile::Reduced);
            let p = w.build(Profile::Paper);
            let ratio = r.total_flops() / p.total_flops();
            assert!(
                (0.8..=1.25).contains(&ratio),
                "{}: reduced/paper flops ratio {ratio}",
                w.name()
            );
            let mem_ratio = r.total_memory_bytes() as f64 / p.total_memory_bytes() as f64;
            assert!(
                (0.7..=1.4).contains(&mem_ratio),
                "{}: reduced/paper memory ratio {mem_ratio}",
                w.name()
            );
        }
    }

    #[test]
    fn paper_profile_is_finer_grained() {
        for w in Workload::ALL {
            let r = w.build(Profile::Reduced);
            let p = w.build(Profile::Paper);
            assert!(
                p.num_nodes() >= r.num_nodes(),
                "{}: paper {} < reduced {}",
                w.name(),
                p.num_nodes(),
                r.num_nodes()
            );
        }
    }

    #[test]
    fn every_graph_is_weakly_connected() {
        for w in Workload::ALL {
            let g = w.build(Profile::Reduced);
            let n = g.num_nodes();
            let mut parent: Vec<usize> = (0..n).collect();
            fn find(p: &mut [usize], mut x: usize) -> usize {
                while p[x] != x {
                    p[x] = p[p[x]];
                    x = p[x];
                }
                x
            }
            for e in g.edges() {
                let (a, b) = (find(&mut parent, e.src), find(&mut parent, e.dst));
                parent[a] = b;
            }
            let root = find(&mut parent, 0);
            for i in 1..n {
                assert_eq!(find(&mut parent, i), root, "{}: node {i} disconnected", w.name());
            }
        }
    }
}
