//! Plain sequence-to-sequence model (Sutskever et al., 2014) —
//! Table-3 training workload, "similar type" to GNMT.
//!
//! 2-layer LSTM encoder + 2-layer LSTM decoder, no attention,
//! batch 128, hidden 512, full-vocab softmax over 10k tokens.

use crate::builder::NodeSpec;
use crate::generators::{Profile, TRAIN_FLOPS_FACTOR};
use crate::graph::{CompGraph, NodeId};
use crate::op::OpKind;
use crate::shape;
use crate::GraphBuilder;

const BATCH: usize = 128;
const SEQ: usize = 32;
const HIDDEN: usize = 512;
const VOCAB: usize = 10_000;
const LAYERS: usize = 2;
const MEM_SCALE: u64 = 8;

fn chunks(profile: Profile) -> usize {
    match profile {
        Profile::Paper => 32,
        Profile::Reduced => 8,
    }
}

/// Build the seq2seq graph.
pub fn build(profile: Profile) -> CompGraph {
    let c = chunks(profile);
    let steps = SEQ / c;
    let mut b = GraphBuilder::new("seq2seq");

    let pre = b.add(
        NodeSpec {
            kind: OpKind::Preprocess,
            name: "input/tokenize".into(),
            out: shape![BATCH, SEQ],
            flops: 5e6,
            param_bytes: 0,
            activation_bytes: Some(4 << 20),
        },
        &[],
    );
    let src = b.plumb(OpKind::Input, "input/src", shape![BATCH, SEQ], &[pre]);
    let tgt = b.plumb(OpKind::Input, "input/tgt", shape![BATCH, SEQ], &[pre]);

    let emb_params = (VOCAB * HIDDEN) as u64 * 4;
    let src_emb = b.layer(
        OpKind::Embedding,
        "encoder/embedding",
        shape![BATCH, SEQ, HIDDEN],
        (BATCH * SEQ) as f64 * TRAIN_FLOPS_FACTOR,
        emb_params,
        &[src],
    );
    let tgt_emb = b.layer(
        OpKind::Embedding,
        "decoder/embedding",
        shape![BATCH, SEQ, HIDDEN],
        (BATCH * SEQ) as f64 * TRAIN_FLOPS_FACTOR,
        emb_params,
        &[tgt],
    );

    let chunk_out = shape![BATCH, steps, HIDDEN];
    let chunk_act = chunk_out.bytes() * MEM_SCALE;
    let chunk_flops = 2.0
        * 4.0
        * HIDDEN as f64
        * (2 * HIDDEN) as f64
        * BATCH as f64
        * steps as f64
        * TRAIN_FLOPS_FACTOR;
    let lstm_params = (4 * HIDDEN * 2 * HIDDEN + 4 * HIDDEN) as u64 * 4;

    let run_stack = |b: &mut GraphBuilder, prefix: &str, inp: NodeId, bridge: Option<&[NodeId]>| {
        let mut last_layer: Vec<NodeId> = Vec::new();
        for l in 0..LAYERS {
            let mut row: Vec<NodeId> = Vec::with_capacity(c);
            for t in 0..c {
                let mut deps: Vec<NodeId> = Vec::new();
                if l == 0 {
                    deps.push(inp);
                    if t == 0 {
                        if let Some(states) = bridge {
                            deps.extend_from_slice(states);
                        }
                    }
                } else {
                    deps.push(last_layer[t]);
                }
                if t > 0 {
                    deps.push(row[t - 1]);
                }
                row.push(b.add(
                    NodeSpec {
                        kind: OpKind::LstmCell,
                        name: format!("{prefix}/l{l}/t{t}"),
                        out: chunk_out.clone(),
                        flops: chunk_flops,
                        param_bytes: if t == 0 { lstm_params } else { 0 },
                        activation_bytes: Some(chunk_act),
                    },
                    &deps,
                ));
            }
            last_layer = row;
        }
        last_layer
    };

    let enc_top = run_stack(&mut b, "encoder", src_emb, None);
    let final_enc = [*enc_top.last().expect("non-empty encoder")];
    let dec_top = run_stack(&mut b, "decoder", tgt_emb, Some(&final_enc));

    let mut losses = Vec::with_capacity(c);
    for (t, &top) in dec_top.iter().enumerate() {
        let logits = shape![BATCH, steps, VOCAB];
        let proj = b.add(
            NodeSpec {
                kind: OpKind::MatMul,
                name: format!("softmax/proj/t{t}"),
                out: logits.clone(),
                flops: 2.0
                    * BATCH as f64
                    * steps as f64
                    * HIDDEN as f64
                    * VOCAB as f64
                    * TRAIN_FLOPS_FACTOR,
                param_bytes: if t == 0 { (VOCAB * HIDDEN) as u64 * 4 } else { 0 },
                activation_bytes: Some(logits.bytes() * 3),
            },
            &[top],
        );
        let sm = b.compute(
            OpKind::Softmax,
            format!("softmax/sm/t{t}"),
            logits.clone(),
            logits.num_elements() as f64 * 3.0,
            &[proj],
        );
        losses.push(b.compute(
            OpKind::Loss,
            format!("loss/t{t}"),
            shape![1],
            logits.num_elements() as f64,
            &[sm],
        ));
    }
    let total = b.compute(OpKind::Add, "loss/total", shape![1], 0.0, &losses);
    b.layer(
        OpKind::ApplyGradient,
        "train/apply_gradients",
        shape![1],
        3e7 * TRAIN_FLOPS_FACTOR,
        0,
        &[total],
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_two_gpus_not_one_irrelevant_but_valid() {
        let g = build(Profile::Reduced);
        let gb = g.total_memory_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gb < 12.0, "seq2seq memory {gb:.1} GB should fit one GPU");
    }

    #[test]
    fn encoder_bridges_to_decoder() {
        let g = build(Profile::Reduced);
        let enc_last = g.nodes().iter().position(|n| n.name == "encoder/l1/t7").expect("node");
        let dec_first = g.nodes().iter().position(|n| n.name == "decoder/l0/t0").expect("node");
        assert!(
            g.edges().iter().any(|e| e.src == enc_last && e.dst == dec_first),
            "no bridge edge"
        );
    }

    #[test]
    fn structure_scales_with_profile() {
        assert!(build(Profile::Paper).num_nodes() > 2 * build(Profile::Reduced).num_nodes());
    }
}
