//! Small Transformer (Vaswani et al., 2017) — Table-3 training
//! workload, "similar type" to BERT.
//!
//! 6 encoder layers, hidden 512, 8 heads, FFN 2048, seq 128, batch 64.

use crate::builder::NodeSpec;
use crate::generators::{Profile, TRAIN_FLOPS_FACTOR};
use crate::graph::{CompGraph, NodeId};
use crate::op::OpKind;
use crate::shape;
use crate::GraphBuilder;

const BATCH: usize = 64;
const SEQ: usize = 128;
const HIDDEN: usize = 512;
const HEADS: usize = 8;
const FFN: usize = 2048;
const LAYERS: usize = 6;
const VOCAB: usize = 16_000;
const MEM_SCALE: u64 = 2;

fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64 * TRAIN_FLOPS_FACTOR
}

fn layer(b: &mut GraphBuilder, profile: Profile, l: usize, input: NodeId) -> NodeId {
    let tok = BATCH * SEQ;
    let hid = shape![BATCH, SEQ, HIDDEN];
    let paper = profile == Profile::Paper;

    let qkv = b.layer(
        OpKind::MatMul,
        format!("l{l}/attn/qkv"),
        shape![BATCH, SEQ, 3 * HIDDEN],
        matmul_flops(tok, HIDDEN, 3 * HIDDEN),
        (HIDDEN * 3 * HIDDEN) as u64 * 4,
        &[input],
    );
    let score_shape = shape![BATCH, HEADS, SEQ, SEQ];
    let score = b.compute(
        OpKind::AttentionScore,
        format!("l{l}/attn/score"),
        score_shape.clone(),
        matmul_flops(BATCH * HEADS * SEQ, HIDDEN / HEADS, SEQ),
        &[qkv],
    );
    let sm = b.compute(
        OpKind::Softmax,
        format!("l{l}/attn/softmax"),
        score_shape.clone(),
        score_shape.num_elements() as f64 * 3.0 * TRAIN_FLOPS_FACTOR,
        &[score],
    );
    let ctx = b.compute(
        OpKind::AttentionContext,
        format!("l{l}/attn/context"),
        hid.clone(),
        matmul_flops(BATCH * HEADS * SEQ, SEQ, HIDDEN / HEADS),
        &[sm, qkv],
    );
    let proj = b.layer(
        OpKind::MatMul,
        format!("l{l}/attn/out"),
        hid.clone(),
        matmul_flops(tok, HIDDEN, HIDDEN),
        (HIDDEN * HIDDEN) as u64 * 4,
        &[ctx],
    );
    let drop = if paper {
        b.plumb(OpKind::Dropout, format!("l{l}/attn/dropout"), hid.clone(), &[proj])
    } else {
        proj
    };
    let ln1 = b.layer(
        OpKind::LayerNorm,
        format!("l{l}/ln1"),
        hid.clone(),
        hid.num_elements() as f64 * 5.0 * TRAIN_FLOPS_FACTOR,
        (2 * HIDDEN) as u64 * 4,
        &[drop, input],
    );
    let ffn_shape = shape![BATCH, SEQ, FFN];
    let f1 = b.layer(
        OpKind::MatMul,
        format!("l{l}/ffn/fc1"),
        ffn_shape.clone(),
        matmul_flops(tok, HIDDEN, FFN),
        (HIDDEN * FFN) as u64 * 4,
        &[ln1],
    );
    let act = if paper {
        let r = b.compute(
            OpKind::Relu,
            format!("l{l}/ffn/relu"),
            ffn_shape.clone(),
            ffn_shape.num_elements() as f64 * TRAIN_FLOPS_FACTOR,
            &[f1],
        );
        r
    } else {
        f1
    };
    let f2 = b.layer(
        OpKind::MatMul,
        format!("l{l}/ffn/fc2"),
        hid.clone(),
        matmul_flops(tok, FFN, HIDDEN),
        (FFN * HIDDEN) as u64 * 4,
        &[act],
    );
    b.layer(
        OpKind::LayerNorm,
        format!("l{l}/ln2"),
        hid.clone(),
        hid.num_elements() as f64 * 5.0 * TRAIN_FLOPS_FACTOR,
        (2 * HIDDEN) as u64 * 4,
        &[f2, ln1],
    )
}

/// Build the small-Transformer graph.
pub fn build(profile: Profile) -> CompGraph {
    let mut b = GraphBuilder::new("transformer");
    let pre = b.add(
        NodeSpec {
            kind: OpKind::Preprocess,
            name: "input/tokenize".into(),
            out: shape![BATCH, SEQ],
            flops: 5e6,
            param_bytes: 0,
            activation_bytes: Some(4 << 20),
        },
        &[],
    );
    let input = b.plumb(OpKind::Input, "input/ids", shape![BATCH, SEQ], &[pre]);
    let emb = b.layer(
        OpKind::Embedding,
        "embeddings/lookup",
        shape![BATCH, SEQ, HIDDEN],
        (BATCH * SEQ) as f64 * TRAIN_FLOPS_FACTOR,
        (VOCAB * HIDDEN) as u64 * 4,
        &[input],
    );

    let mut cur = emb;
    for l in 0..LAYERS {
        cur = layer(&mut b, profile, l, cur);
    }

    let logits = shape![BATCH, SEQ, VOCAB];
    let proj = b.add(
        NodeSpec {
            kind: OpKind::MatMul,
            name: "head/proj".into(),
            out: logits.clone(),
            flops: matmul_flops(BATCH * SEQ, HIDDEN, VOCAB),
            param_bytes: 0, // tied embedding
            activation_bytes: Some(logits.bytes() * 3),
        },
        &[cur],
    );
    let sm = b.compute(
        OpKind::Softmax,
        "head/softmax",
        logits.clone(),
        logits.num_elements() as f64 * 3.0,
        &[proj],
    );
    let loss = b.compute(OpKind::Loss, "head/loss", shape![1], logits.num_elements() as f64, &[sm]);
    b.layer(
        OpKind::ApplyGradient,
        "train/apply_gradients",
        shape![1],
        4.4e7 * TRAIN_FLOPS_FACTOR,
        0,
        &[loss],
    );
    let _ = MEM_SCALE;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasonable_size() {
        let g = build(Profile::Reduced);
        assert!(g.total_memory_bytes() < 12 << 30, "should fit a GPU");
        assert!((1e11..2e12).contains(&g.total_flops()), "{:.3e}", g.total_flops());
    }

    #[test]
    fn layers_form_chain_with_residuals() {
        let g = build(Profile::Reduced);
        let ln1 = g.nodes().iter().position(|n| n.name == "l2/ln1").expect("node");
        assert_eq!(g.in_degrees()[ln1], 2);
    }

    #[test]
    fn paper_profile_adds_unfused_ops() {
        assert!(build(Profile::Paper).num_nodes() > build(Profile::Reduced).num_nodes());
    }
}
