//! ResNet-50 (He et al., 2016) — an additional vision workload beyond
//! the paper's benchmark set, for library users and broader
//! generalization studies. Batch 64.

use crate::builder::NodeSpec;
use crate::generators::{Profile, TRAIN_FLOPS_FACTOR};
use crate::graph::{CompGraph, NodeId};
use crate::op::OpKind;
use crate::shape;
use crate::GraphBuilder;

const BATCH: usize = 64;
const MEM_SCALE: u64 = 2;

struct Ctx {
    b: GraphBuilder,
    profile: Profile,
}

impl Ctx {
    fn conv(
        &mut self,
        name: String,
        input: NodeId,
        k: usize,
        cin: usize,
        cout: usize,
        hw: usize,
    ) -> NodeId {
        let out = shape![BATCH, hw, hw, cout];
        let fwd = 2.0 * (k * k * cin * cout) as f64 * (hw * hw) as f64 * BATCH as f64;
        let conv = self.b.add(
            NodeSpec {
                kind: OpKind::Conv2d,
                name: name.clone(),
                out: out.clone(),
                flops: fwd * TRAIN_FLOPS_FACTOR,
                param_bytes: (k * k * cin * cout + 2 * cout) as u64 * 4,
                activation_bytes: Some(out.bytes() * MEM_SCALE),
            },
            &[input],
        );
        if self.profile == Profile::Paper {
            let elem = out.num_elements() as f64 * TRAIN_FLOPS_FACTOR;
            let bn = self.b.add(
                NodeSpec {
                    kind: OpKind::BatchNorm,
                    name: format!("{name}/bn"),
                    out: out.clone(),
                    flops: 4.0 * elem,
                    param_bytes: (4 * cout) as u64 * 4,
                    activation_bytes: Some(out.bytes() / 8),
                },
                &[conv],
            );
            self.b.add(
                NodeSpec {
                    kind: OpKind::Relu,
                    name: format!("{name}/relu"),
                    out,
                    flops: elem,
                    param_bytes: 0,
                    activation_bytes: Some(0),
                },
                &[bn],
            )
        } else {
            conv
        }
    }

    /// Bottleneck block: 1×1 reduce → 3×3 → 1×1 expand (+ projection
    /// shortcut when the channel count changes).
    #[allow(clippy::too_many_arguments)]
    fn bottleneck(
        &mut self,
        name: String,
        input: NodeId,
        cin: usize,
        mid: usize,
        cout: usize,
        hw: usize,
        project: bool,
    ) -> NodeId {
        let a = self.conv(format!("{name}/conv1"), input, 1, cin, mid, hw);
        let b = self.conv(format!("{name}/conv2"), a, 3, mid, mid, hw);
        let c = self.conv(format!("{name}/conv3"), b, 1, mid, cout, hw);
        let shortcut = if project {
            self.conv(format!("{name}/proj"), input, 1, cin, cout, hw)
        } else {
            input
        };
        let out = shape![BATCH, hw, hw, cout];
        self.b.compute(
            OpKind::Add,
            format!("{name}/add"),
            out.clone(),
            out.num_elements() as f64 * TRAIN_FLOPS_FACTOR,
            &[c, shortcut],
        )
    }
}

/// Build the ResNet-50 graph.
pub fn build(profile: Profile) -> CompGraph {
    let mut c = Ctx { b: GraphBuilder::new("resnet50"), profile };
    let pipeline = c.b.add(
        NodeSpec {
            kind: OpKind::DataPipeline,
            name: "input/pipeline".into(),
            out: shape![BATCH, 224, 224, 3],
            flops: 1e8,
            param_bytes: 0,
            activation_bytes: Some(128 << 20),
        },
        &[],
    );
    let input = c.b.plumb(OpKind::Input, "input", shape![BATCH, 224, 224, 3], &[pipeline]);
    let stem = c.conv("stem/conv".into(), input, 7, 3, 64, 112);
    let pooled = c.b.compute(
        OpKind::MaxPool,
        "stem/pool",
        shape![BATCH, 56, 56, 64],
        (BATCH * 56 * 56 * 64 * 9) as f64 * TRAIN_FLOPS_FACTOR,
        &[stem],
    );

    // (stage, blocks, mid, cout, hw)
    let stages = [
        (2usize, 3usize, 64usize, 256usize, 56usize),
        (3, 4, 128, 512, 28),
        (4, 6, 256, 1024, 14),
        (5, 3, 512, 2048, 7),
    ];
    let mut cur = pooled;
    let mut cin = 64usize;
    for (stage, blocks, mid, cout, hw) in stages {
        for blk in 0..blocks {
            cur =
                c.bottleneck(format!("stage{stage}/block{blk}"), cur, cin, mid, cout, hw, blk == 0);
            cin = cout;
        }
    }

    let gap = c.b.compute(
        OpKind::AvgPool,
        "head/gap",
        shape![BATCH, 1, 1, 2048],
        (BATCH * 7 * 7 * 2048) as f64 * TRAIN_FLOPS_FACTOR,
        &[cur],
    );
    let fc = c.b.layer(
        OpKind::MatMul,
        "head/fc",
        shape![BATCH, 1000],
        2.0 * (2048 * 1000 * BATCH) as f64 * TRAIN_FLOPS_FACTOR,
        (2048 * 1000 + 1000) as u64 * 4,
        &[gap],
    );
    let sm = c.b.compute(
        OpKind::Softmax,
        "head/softmax",
        shape![BATCH, 1000],
        (3 * BATCH * 1000) as f64,
        &[fc],
    );
    let loss = c.b.compute(OpKind::Loss, "head/loss", shape![1], (BATCH * 1000) as f64, &[sm]);
    c.b.layer(
        OpKind::ApplyGradient,
        "train/apply_gradients",
        shape![1],
        2.56e7 * TRAIN_FLOPS_FACTOR,
        0,
        &[loss],
    );
    c.b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_are_resnet50_scale() {
        // ~4.1 GMACs = 8.2 GFLOP/image fwd × 64 × 3 ≈ 1.6 TFLOP.
        let g = build(Profile::Reduced);
        assert!((1e12..2.5e12).contains(&g.total_flops()), "{:.3e}", g.total_flops());
    }

    #[test]
    fn params_are_resnet50_scale() {
        // ~25.6M params ≈ 102 MB.
        let g = build(Profile::Reduced);
        let mb = g.total_param_bytes() as f64 / (1 << 20) as f64;
        assert!((80.0..140.0).contains(&mb), "{mb} MB");
    }

    #[test]
    fn residual_structure() {
        let g = build(Profile::Reduced);
        // Every block's add has exactly two inputs.
        for (i, n) in g.nodes().iter().enumerate() {
            if n.name.ends_with("/add") {
                assert_eq!(g.in_degrees()[i], 2, "{}", n.name);
            }
        }
        // 16 bottleneck blocks.
        assert_eq!(g.nodes().iter().filter(|n| n.name.ends_with("/add")).count(), 16);
    }

    #[test]
    fn valid_dag_in_both_profiles() {
        for p in [Profile::Reduced, Profile::Paper] {
            let g = build(p);
            assert!(g.validate().is_ok());
        }
        assert!(build(Profile::Paper).num_nodes() > build(Profile::Reduced).num_nodes());
    }
}
