//! The computational-graph DAG.

use crate::op::OpKind;
use mars_json::Json;

/// Index of a node within a [`CompGraph`].
pub type NodeId = usize;

/// Shape of an operation's output tensor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TensorShape(pub Vec<usize>);

impl TensorShape {
    /// Scalar shape.
    pub fn scalar() -> Self {
        TensorShape(vec![1])
    }

    /// Number of elements.
    pub fn num_elements(&self) -> u64 {
        self.0.iter().map(|&d| d as u64).product()
    }

    /// Size in bytes assuming f32 elements.
    pub fn bytes(&self) -> u64 {
        self.num_elements() * 4
    }

    /// Largest dimension.
    pub fn max_dim(&self) -> usize {
        self.0.iter().copied().max().unwrap_or(1)
    }
}

/// Convenience constructor: `shape![24, 384, 768]`.
#[macro_export]
macro_rules! shape {
    ($($d:expr),* $(,)?) => {
        $crate::graph::TensorShape(vec![$($d),*])
    };
}

/// One operation node.
#[derive(Clone, Debug)]
pub struct OpNode {
    /// Human-readable name (`"layer3/conv2d"`).
    pub name: String,
    /// Operation kind.
    pub kind: OpKind,
    /// Output tensor shape.
    pub output_shape: TensorShape,
    /// Compute cost in FLOPs (forward + backward folded together — the
    /// placement granularity of the paper colocates an op with its
    /// gradient ops).
    pub flops: f64,
    /// Persistent parameter bytes resident on the op's device.
    pub param_bytes: u64,
    /// Live activation bytes held for the backward pass.
    pub activation_bytes: u64,
    /// Whether a GPU kernel exists for the op.
    pub gpu_compatible: bool,
}

/// A data-flow edge carrying `bytes` from `src` to `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Producing node.
    pub src: NodeId,
    /// Consuming node.
    pub dst: NodeId,
    /// Tensor size transferred if the two ops land on different devices.
    pub bytes: u64,
}

/// A directed acyclic computational graph.
#[derive(Clone, Debug)]
pub struct CompGraph {
    /// Workload name (`"inception_v3"`).
    pub name: String,
    nodes: Vec<OpNode>,
    edges: Vec<Edge>,
}

impl CompGraph {
    /// Empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        CompGraph { name: name.into(), nodes: Vec::new(), edges: Vec::new() }
    }

    /// Append a node, returning its id.
    pub fn add_node(&mut self, node: OpNode) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Append an edge.
    ///
    /// # Panics
    /// If either endpoint is out of range or the edge is a self-loop.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        assert!(src < self.nodes.len(), "edge src {src} out of range");
        assert!(dst < self.nodes.len(), "edge dst {dst} out of range");
        assert_ne!(src, dst, "self-loop on node {src}");
        self.edges.push(Edge { src, dst, bytes });
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &OpNode {
        &self.nodes[id]
    }

    /// Mutable node accessor (cost calibration, test fixtures).
    pub fn node_mut(&mut self, id: NodeId) -> &mut OpNode {
        &mut self.nodes[id]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[OpNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Successor adjacency lists (edge indices per source node).
    pub fn out_edges(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            out[e.src].push(i);
        }
        out
    }

    /// Predecessor adjacency lists (edge indices per destination node).
    pub fn in_edges(&self) -> Vec<Vec<usize>> {
        let mut inn = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            inn[e.dst].push(i);
        }
        inn
    }

    /// In-degree per node.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.nodes.len()];
        for e in &self.edges {
            d[e.dst] += 1;
        }
        d
    }

    /// Out-degree per node.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.nodes.len()];
        for e in &self.edges {
            d[e.src] += 1;
        }
        d
    }

    /// Kahn topological order.
    ///
    /// Returns `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let mut indeg = self.in_degrees();
        let out = self.out_edges();
        let mut queue: std::collections::VecDeque<NodeId> =
            indeg.iter().enumerate().filter(|(_, &d)| d == 0).map(|(i, _)| i).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for &ei in &out[n] {
                let dst = self.edges[ei].dst;
                indeg[dst] -= 1;
                if indeg[dst] == 0 {
                    queue.push_back(dst);
                }
            }
        }
        (order.len() == self.nodes.len()).then_some(order)
    }

    /// Validate structural invariants: acyclic, all names non-empty,
    /// costs non-negative and finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.topo_order().is_none() {
            return Err(format!("graph {} contains a cycle", self.name));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.name.is_empty() {
                return Err(format!("node {i} has an empty name"));
            }
            if !n.flops.is_finite() || n.flops < 0.0 {
                return Err(format!("node {} has invalid flops {}", n.name, n.flops));
            }
        }
        Ok(())
    }

    /// Total FLOPs over all nodes.
    pub fn total_flops(&self) -> f64 {
        self.nodes.iter().map(|n| n.flops).sum()
    }

    /// Total persistent parameter bytes.
    pub fn total_param_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.param_bytes).sum()
    }

    /// Total live activation bytes.
    pub fn total_activation_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.activation_bytes).sum()
    }

    /// Total memory footprint (parameters + activations).
    pub fn total_memory_bytes(&self) -> u64 {
        self.total_param_bytes() + self.total_activation_bytes()
    }

    /// Critical-path compute time lower bound given a per-flop rate
    /// (seconds per FLOP); ignores communication. Used by tests as a
    /// makespan lower bound.
    pub fn critical_path_flops(&self) -> f64 {
        let order = self.topo_order().expect("validated DAG");
        let inn = self.in_edges();
        let mut finish = vec![0.0f64; self.nodes.len()];
        let mut best: f64 = 0.0;
        for &n in &order {
            let start = inn[n].iter().map(|&ei| finish[self.edges[ei].src]).fold(0.0f64, f64::max);
            finish[n] = start + self.nodes[n].flops;
            best = best.max(finish[n]);
        }
        best
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Serialize to a [`Json`] value tree.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("name", Json::from(&self.name)),
            ("nodes", Json::arr(self.nodes.iter().map(OpNode::to_json_value))),
            ("edges", Json::arr(self.edges.iter().map(Edge::to_json_value))),
        ])
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = Json::parse(s).map_err(|e| e.to_string())?;
        Self::from_json_value(&v)
    }

    /// Deserialize from a [`Json`] value tree.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let name = v["name"].as_str().ok_or("graph: missing 'name'")?.to_string();
        let nodes = v["nodes"]
            .as_array()
            .ok_or("graph: missing 'nodes'")?
            .iter()
            .map(OpNode::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let edges = v["edges"]
            .as_array()
            .ok_or("graph: missing 'edges'")?
            .iter()
            .map(Edge::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        for e in &edges {
            if e.src >= nodes.len() || e.dst >= nodes.len() {
                return Err(format!("graph: edge ({}, {}) out of range", e.src, e.dst));
            }
        }
        Ok(CompGraph { name, nodes, edges })
    }
}

impl TensorShape {
    /// JSON encoding: a bare array of dimensions.
    pub fn to_json_value(&self) -> Json {
        Json::arr(self.0.iter().map(|&d| Json::from(d)))
    }

    /// Decode from the bare-array encoding.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let dims = v
            .as_array()
            .ok_or("shape: expected array")?
            .iter()
            .map(|d| d.as_usize().ok_or_else(|| format!("shape: bad dim {d}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TensorShape(dims))
    }
}

impl OpNode {
    /// JSON encoding as an object of the node's fields.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("name", Json::from(&self.name)),
            ("kind", Json::from(self.kind.name())),
            ("output_shape", self.output_shape.to_json_value()),
            ("flops", Json::from(self.flops)),
            ("param_bytes", Json::from(self.param_bytes)),
            ("activation_bytes", Json::from(self.activation_bytes)),
            ("gpu_compatible", Json::from(self.gpu_compatible)),
        ])
    }

    /// Decode an [`OpNode`] object.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let kind_name = v["kind"].as_str().ok_or("node: missing 'kind'")?;
        Ok(OpNode {
            name: v["name"].as_str().ok_or("node: missing 'name'")?.to_string(),
            kind: OpKind::from_name(kind_name)
                .ok_or_else(|| format!("node: unknown kind '{kind_name}'"))?,
            output_shape: TensorShape::from_json_value(&v["output_shape"])?,
            flops: v["flops"].as_f64().ok_or("node: missing 'flops'")?,
            param_bytes: v["param_bytes"].as_u64().ok_or("node: missing 'param_bytes'")?,
            activation_bytes: v["activation_bytes"]
                .as_u64()
                .ok_or("node: missing 'activation_bytes'")?,
            gpu_compatible: v["gpu_compatible"]
                .as_bool()
                .ok_or("node: missing 'gpu_compatible'")?,
        })
    }
}

impl Edge {
    /// JSON encoding as a `{src, dst, bytes}` object.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("src", Json::from(self.src)),
            ("dst", Json::from(self.dst)),
            ("bytes", Json::from(self.bytes)),
        ])
    }

    /// Decode an [`Edge`] object.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        Ok(Edge {
            src: v["src"].as_usize().ok_or("edge: missing 'src'")?,
            dst: v["dst"].as_usize().ok_or("edge: missing 'dst'")?,
            bytes: v["bytes"].as_u64().ok_or("edge: missing 'bytes'")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_node(name: &str) -> OpNode {
        OpNode {
            name: name.into(),
            kind: OpKind::Identity,
            output_shape: TensorShape(vec![1]),
            flops: 1.0,
            param_bytes: 0,
            activation_bytes: 4,
            gpu_compatible: true,
        }
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut g = CompGraph::new("t");
        let a = g.add_node(mk_node("a"));
        let b = g.add_node(mk_node("b"));
        let c = g.add_node(mk_node("c"));
        g.add_edge(a, b, 4);
        g.add_edge(b, c, 4);
        g.add_edge(a, c, 4);
        let order = g.topo_order().expect("acyclic");
        let pos: Vec<usize> = (0..3).map(|n| order.iter().position(|&x| x == n).unwrap()).collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = CompGraph::new("c");
        let a = g.add_node(mk_node("a"));
        let b = g.add_node(mk_node("b"));
        g.add_edge(a, b, 4);
        g.add_edge(b, a, 4);
        assert!(g.topo_order().is_none());
        assert!(g.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = CompGraph::new("s");
        let a = g.add_node(mk_node("a"));
        g.add_edge(a, a, 4);
    }

    #[test]
    fn degrees_and_totals() {
        let mut g = CompGraph::new("d");
        let a = g.add_node(mk_node("a"));
        let b = g.add_node(mk_node("b"));
        g.add_edge(a, b, 16);
        assert_eq!(g.in_degrees(), vec![0, 1]);
        assert_eq!(g.out_degrees(), vec![1, 0]);
        assert_eq!(g.total_flops(), 2.0);
        assert_eq!(g.total_activation_bytes(), 8);
    }

    #[test]
    fn critical_path_on_diamond() {
        let mut g = CompGraph::new("dia");
        let a = g.add_node(mk_node("a"));
        let mut heavy = mk_node("b");
        heavy.flops = 10.0;
        let b = g.add_node(heavy);
        let c = g.add_node(mk_node("c"));
        let d = g.add_node(mk_node("d"));
        g.add_edge(a, b, 4);
        g.add_edge(a, c, 4);
        g.add_edge(b, d, 4);
        g.add_edge(c, d, 4);
        // Path a→b→d dominates: 1 + 10 + 1.
        assert_eq!(g.critical_path_flops(), 12.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut g = CompGraph::new("j");
        let a = g.add_node(mk_node("a"));
        let b = g.add_node(mk_node("b"));
        g.add_edge(a, b, 4);
        let j = g.to_json();
        let g2 = CompGraph::from_json(&j).expect("roundtrip");
        assert_eq!(g2.num_nodes(), 2);
        assert_eq!(g2.num_edges(), 1);
        assert_eq!(g2.name, "j");
    }

    #[test]
    fn shape_helpers() {
        let s = TensorShape(vec![24, 384, 768]);
        assert_eq!(s.num_elements(), 24 * 384 * 768);
        assert_eq!(s.bytes(), 24 * 384 * 768 * 4);
        assert_eq!(s.max_dim(), 768);
    }
}
