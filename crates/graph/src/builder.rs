//! Fluent construction helper used by the workload generators.
//!
//! Wraps [`CompGraph`] with sensible defaults: edge bytes default to the
//! producer's output-tensor size, activation bytes default to twice the
//! output size (the tensor itself plus backward-pass workspace), and
//! GPU compatibility defaults from the op kind.

use crate::graph::{CompGraph, NodeId, OpNode, TensorShape};
use crate::op::OpKind;

/// Builder for one workload graph.
///
/// ```
/// use mars_graph::{shape, GraphBuilder, OpKind};
///
/// let mut b = GraphBuilder::new("toy");
/// let x = b.compute(OpKind::Input, "x", shape![8, 8], 0.0, &[]);
/// let y = b.layer(OpKind::MatMul, "fc", shape![8, 4], 2.0 * 8.0 * 8.0 * 4.0, 128, &[x]);
/// b.compute(OpKind::Loss, "loss", shape![1], 8.0, &[y]);
/// let g = b.build();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert!(g.topo_order().is_some());
/// ```
pub struct GraphBuilder {
    graph: CompGraph,
}

/// Specification of one op for [`GraphBuilder::add`].
pub struct NodeSpec {
    /// Op kind.
    pub kind: OpKind,
    /// Name.
    pub name: String,
    /// Output shape.
    pub out: TensorShape,
    /// FLOPs (forward + backward).
    pub flops: f64,
    /// Persistent parameter bytes.
    pub param_bytes: u64,
    /// Live activation bytes; `None` → `2 × output bytes`.
    pub activation_bytes: Option<u64>,
}

impl NodeSpec {
    /// Spec with zero cost (plumbing ops).
    pub fn plumbing(kind: OpKind, name: impl Into<String>, out: TensorShape) -> Self {
        NodeSpec {
            kind,
            name: name.into(),
            out,
            flops: 0.0,
            param_bytes: 0,
            activation_bytes: None,
        }
    }
}

impl GraphBuilder {
    /// Start a new graph.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder { graph: CompGraph::new(name) }
    }

    /// Add an op, wiring data edges from `deps` with the producers'
    /// output sizes.
    pub fn add(&mut self, spec: NodeSpec, deps: &[NodeId]) -> NodeId {
        let activation = spec.activation_bytes.unwrap_or(spec.out.bytes() * 2);
        let gpu_compatible = spec.kind.gpu_compatible();
        let id = self.graph.add_node(OpNode {
            name: spec.name,
            kind: spec.kind,
            output_shape: spec.out,
            flops: spec.flops,
            param_bytes: spec.param_bytes,
            activation_bytes: activation,
            gpu_compatible,
        });
        for &d in deps {
            let bytes = self.graph.node(d).output_shape.bytes();
            self.graph.add_edge(d, id, bytes);
        }
        id
    }

    /// Shorthand: op with compute cost, no parameters.
    pub fn compute(
        &mut self,
        kind: OpKind,
        name: impl Into<String>,
        out: TensorShape,
        flops: f64,
        deps: &[NodeId],
    ) -> NodeId {
        self.add(
            NodeSpec {
                kind,
                name: name.into(),
                out,
                flops,
                param_bytes: 0,
                activation_bytes: None,
            },
            deps,
        )
    }

    /// Shorthand: parameterized op (conv/matmul/etc.).
    pub fn layer(
        &mut self,
        kind: OpKind,
        name: impl Into<String>,
        out: TensorShape,
        flops: f64,
        param_bytes: u64,
        deps: &[NodeId],
    ) -> NodeId {
        self.add(
            NodeSpec { kind, name: name.into(), out, flops, param_bytes, activation_bytes: None },
            deps,
        )
    }

    /// Shorthand: zero-cost plumbing op.
    pub fn plumb(
        &mut self,
        kind: OpKind,
        name: impl Into<String>,
        out: TensorShape,
        deps: &[NodeId],
    ) -> NodeId {
        self.add(NodeSpec::plumbing(kind, name, out), deps)
    }

    /// Scale the compute cost of every node by `factor` (used for
    /// calibrating a generator against the paper's absolute runtimes).
    pub fn scale_flops(&mut self, factor: f64) {
        for id in 0..self.graph.num_nodes() {
            self.graph.node_mut(id).flops *= factor;
        }
    }

    /// Finish and validate.
    pub fn build(self) -> CompGraph {
        self.graph.validate().unwrap_or_else(|e| panic!("generator produced invalid graph: {e}"));
        self.graph
    }

    /// Access the graph under construction.
    pub fn graph(&self) -> &CompGraph {
        &self.graph
    }
}
