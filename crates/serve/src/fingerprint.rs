//! Cache-key derivation: stable 64-bit fingerprints for the two halves
//! of a placement query.
//!
//! The serve cache is keyed by `(graph_fingerprint, cluster_fingerprint)`
//! — the same SplitMix64 fold as `mars_sim::measure::env_fingerprint`,
//! split into its graph and cluster halves (a serve cache spans many
//! environments, so the halves must be independently reusable) and
//! deepened on the cluster side: a query cluster arrives over the wire
//! from an arbitrary client, so every field that could distinguish two
//! clusters (per-device compute model, per-pair links, failure mask)
//! folds into the key, not just the memory sizes the eval memo guards.

use mars_graph::CompGraph;
use mars_rng::rngs::SplitMix64;
use mars_rng::RngCore;
use mars_sim::Cluster;

fn fold(h: &mut u64, v: u64) {
    *h = SplitMix64::new(*h ^ v).next_u64();
}

/// Fingerprint of the graph half of a query: workload name plus node
/// and edge counts. Graphs are generated from canonical
/// `(workload, profile)` recipes, so identity of the recipe implies
/// identity of the graph.
pub fn graph_fingerprint(graph: &CompGraph) -> u64 {
    let mut h: u64 = 0x4d41_5253_4752_4148; // "MARSGRAH"
    for b in graph.name.bytes() {
        fold(&mut h, b as u64);
    }
    fold(&mut h, graph.num_nodes() as u64);
    fold(&mut h, graph.num_edges() as u64);
    h
}

/// Fingerprint of the cluster half of a query: every device's full
/// compute/memory model, every (overridden) link, and the failure
/// mask. Floats fold as raw bits, so any observable cluster difference
/// changes the key.
pub fn cluster_fingerprint(cluster: &Cluster) -> u64 {
    let mut h: u64 = 0x4d41_5253_434c_5553; // "MARSCLUS"
    let nd = cluster.num_devices();
    fold(&mut h, nd as u64);
    for d in 0..nd {
        let spec = cluster.device(d);
        for b in spec.name.bytes() {
            fold(&mut h, b as u64);
        }
        fold(&mut h, spec.kind as u64);
        fold(&mut h, spec.peak_gflops.to_bits());
        fold(&mut h, spec.util_knee_flops.to_bits());
        fold(&mut h, spec.op_overhead_s.to_bits());
        fold(&mut h, spec.memory_bytes);
        fold(&mut h, cluster.is_alive(d) as u64);
    }
    for from in 0..nd {
        for to in 0..nd {
            if from != to {
                let link = cluster.link(from, to);
                fold(&mut h, link.bandwidth_bps.to_bits());
                fold(&mut h, link.latency_s.to_bits());
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_graph::generators::{Profile, Workload};
    use mars_sim::LinkSpec;

    #[test]
    fn graph_fingerprint_distinguishes_workloads_and_profiles() {
        let a = graph_fingerprint(&Workload::InceptionV3.build(Profile::Reduced));
        let b = graph_fingerprint(&Workload::Vgg16.build(Profile::Reduced));
        let c = graph_fingerprint(&Workload::InceptionV3.build(Profile::Paper));
        let a2 = graph_fingerprint(&Workload::InceptionV3.build(Profile::Reduced));
        assert_eq!(a, a2, "same recipe, same fingerprint");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cluster_fingerprint_sees_failures_links_and_specs() {
        let base = Cluster::p100_quad();
        assert_eq!(cluster_fingerprint(&base), cluster_fingerprint(&Cluster::p100_quad()));
        assert_ne!(cluster_fingerprint(&base), cluster_fingerprint(&Cluster::heterogeneous()));

        let mut failed = Cluster::p100_quad();
        failed.fail_device(2);
        assert_ne!(cluster_fingerprint(&base), cluster_fingerprint(&failed));

        let mut linked = Cluster::p100_quad();
        linked.set_link(0, 1, LinkSpec { bandwidth_bps: 1e9, latency_s: 1e-3 });
        assert_ne!(cluster_fingerprint(&base), cluster_fingerprint(&linked));
    }

    #[test]
    fn fingerprint_survives_a_wire_roundtrip() {
        let mut c = Cluster::heterogeneous();
        c.fail_device(1);
        let back = Cluster::from_json(&c.to_json()).expect("roundtrips");
        assert_eq!(cluster_fingerprint(&c), cluster_fingerprint(&back));
    }
}
