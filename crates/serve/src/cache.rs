//! Hot tier: bounded in-memory LRU from query key to device ranking.
//!
//! Generalizes `mars_sim::EvalCache` from evaluation results to policy
//! outputs: the key widens from a [`Placement`](mars_sim::Placement)
//! under one fixed environment to the `(graph fingerprint, cluster
//! fingerprint)` pair itself, so one cache serves every workload and
//! cluster a client throws at it. Values are `Arc`-shared so a hit
//! never copies the ranking and concurrent responders can hold it
//! while the cache keeps evolving.
//!
//! Eviction is least-recently-used with a monotonic tick, exactly as
//! in the eval memo: ticks are unique, the victim scan is a
//! deterministic `O(len)` min-by-`last_used`, and eviction can only
//! ever cause a re-computation — never a different answer — because
//! the cold path is bit-deterministic (pinned by the eviction property
//! test in `engine.rs`).

use crate::engine::Ranking;
use std::collections::HashMap;

/// Default number of cached rankings ([`PlacementCache::with_default_capacity`]).
pub const DEFAULT_CAPACITY: usize = 256;

/// Cache key: `(graph fingerprint, cluster fingerprint)`
/// (see [`crate::fingerprint`]).
pub type Key = (u64, u64);

struct Entry {
    value: Ranking,
    last_used: u64,
}

/// Bounded LRU map from [`Key`] to the full device [`Ranking`].
pub struct PlacementCache {
    map: HashMap<Key, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlacementCache {
    /// Empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PlacementCache capacity must be positive");
        PlacementCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// [`PlacementCache::new`] with [`DEFAULT_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }

    /// Look up `key`, refreshing its recency and bumping the hit/miss
    /// statistics.
    pub fn get(&mut self, key: Key) -> Option<Ranking> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: Key, value: Ranking) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Unique ticks make the min unambiguous: deterministic victim.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("cache at capacity implies non-empty");
            self.map.remove(&victim);
            self.evictions += 1;
        }
        self.map.insert(key, Entry { value, last_used: self.tick });
    }

    /// Number of cached rankings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rank(d: usize) -> Ranking {
        Arc::new(vec![vec![d, d + 1]])
    }

    #[test]
    fn get_miss_then_hit() {
        let mut c = PlacementCache::new(4);
        assert!(c.get((1, 1)).is_none());
        c.insert((1, 1), rank(0));
        let got = c.get((1, 1)).expect("hit");
        assert_eq!(*got, vec![vec![0, 1]]);
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = PlacementCache::new(2);
        c.insert((1, 0), rank(1));
        c.insert((2, 0), rank(2));
        assert!(c.get((1, 0)).is_some()); // refresh (1,0): (2,0) is now LRU
        c.insert((3, 0), rank(3));
        assert!(c.get((2, 0)).is_none(), "LRU entry evicted");
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((3, 0)).is_some());
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn reinserting_present_key_does_not_evict() {
        let mut c = PlacementCache::new(2);
        c.insert((1, 0), rank(1));
        c.insert((2, 0), rank(2));
        c.insert((1, 0), rank(9));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().2, 0);
        assert_eq!(*c.get((1, 0)).expect("present"), vec![vec![9, 10]]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = PlacementCache::new(0);
    }
}
