//! Warm tier: persistent JSONL-backed placement store.
//!
//! One JSON object per line, appended with an immediate flush so a
//! crash mid-write loses at most the torn final line — which
//! load-on-start silently skips (a warm miss just re-runs inference).
//! Every entry is stamped with the weights fingerprint
//! ([`mars_nn::checkpoint::fingerprint`]); loading filters to the
//! serving engine's own fingerprint so a store file shared across
//! checkpoints can never replay a ranking computed by different
//! weights. Fingerprints are written as 16-digit hex (the mars-net
//! wire convention: JSON numbers are f64s and cannot carry 64 bits).

use crate::engine::Ranking;
use mars_json::Json;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Append-only JSONL store of `(graph_fp, cluster_fp) → ranking`
/// entries for one weights fingerprint.
pub struct PlacementStore {
    path: PathBuf,
    file: File,
    weights_fp: u64,
    entries: HashMap<(u64, u64), Ranking>,
    loaded: usize,
    skipped: usize,
}

fn hex_fp(j: &Json, field: &str) -> Option<u64> {
    j.get(field).and_then(Json::as_str).and_then(|s| u64::from_str_radix(s, 16).ok())
}

fn parse_entry(line: &str) -> Option<(u64, u64, u64, Vec<Vec<usize>>)> {
    let j = Json::parse(line).ok()?;
    let graph_fp = hex_fp(&j, "graph_fp")?;
    let cluster_fp = hex_fp(&j, "cluster_fp")?;
    let weights_fp = hex_fp(&j, "weights_fp")?;
    let ranking = j
        .get("ranking")?
        .as_array()?
        .iter()
        .map(|row| row.as_array()?.iter().map(Json::as_usize).collect())
        .collect::<Option<Vec<Vec<usize>>>>()?;
    Some((graph_fp, cluster_fp, weights_fp, ranking))
}

impl PlacementStore {
    /// Open (creating if absent) the store at `path`, loading every
    /// well-formed entry whose weights fingerprint matches
    /// `weights_fp`. Torn or foreign lines are counted and skipped.
    pub fn open(path: impl AsRef<Path>, weights_fp: u64) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        let mut loaded = 0;
        let mut skipped = 0;
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match parse_entry(&line) {
                    Some((g, c, w, ranking)) if w == weights_fp => {
                        entries.insert((g, c), Arc::new(ranking));
                        loaded += 1;
                    }
                    _ => skipped += 1,
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(PlacementStore { path, file, weights_fp, entries, loaded, skipped })
    }

    /// Look up a ranking by cache key.
    pub fn get(&self, key: (u64, u64)) -> Option<Ranking> {
        self.entries.get(&key).cloned()
    }

    /// Append `ranking` under `key` and flush. The in-memory map is
    /// updated too, so a store never misses what it just wrote.
    pub fn append(
        &mut self,
        key: (u64, u64),
        workload: &str,
        profile: &str,
        ranking: Ranking,
    ) -> io::Result<()> {
        let line = Json::obj([
            ("graph_fp", Json::from(format!("{:016x}", key.0))),
            ("cluster_fp", Json::from(format!("{:016x}", key.1))),
            ("weights_fp", Json::from(format!("{:016x}", self.weights_fp))),
            ("workload", Json::from(workload)),
            ("profile", Json::from(profile)),
            (
                "ranking",
                Json::arr(
                    ranking.iter().map(|row| Json::arr(row.iter().map(|&d| Json::from(d as f64)))),
                ),
            ),
        ]);
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.entries.insert(key, ranking);
        Ok(())
    }

    /// Number of entries currently held (loaded + appended).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(loaded, skipped)` line counts from the load-on-start scan.
    pub fn load_stats(&self) -> (usize, usize) {
        (self.loaded, self.skipped)
    }

    /// Path this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mars-serve-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir.join("store.jsonl")
    }

    fn rank(rows: &[&[usize]]) -> Ranking {
        Arc::new(rows.iter().map(|r| r.to_vec()).collect())
    }

    #[test]
    fn roundtrips_across_reopen() {
        let path = tmp("roundtrip");
        let mut s = PlacementStore::open(&path, 7).expect("open");
        s.append((1, 2), "vgg16", "reduced", rank(&[&[0, 1], &[1, 0]])).expect("append");
        s.append((3, 4), "gnmt4", "paper", rank(&[&[2]])).expect("append");
        drop(s);

        let s2 = PlacementStore::open(&path, 7).expect("reopen");
        assert_eq!(s2.load_stats(), (2, 0));
        assert_eq!(*s2.get((1, 2)).expect("entry"), vec![vec![0, 1], vec![1, 0]]);
        assert_eq!(*s2.get((3, 4)).expect("entry"), vec![vec![2]]);
    }

    #[test]
    fn torn_final_line_is_skipped_not_fatal() {
        let path = tmp("torn");
        let mut s = PlacementStore::open(&path, 7).expect("open");
        s.append((1, 2), "vgg16", "reduced", rank(&[&[0]])).expect("append");
        drop(s);
        // Simulate a crash mid-append: a truncated JSON object.
        let mut raw = fs::read_to_string(&path).expect("read");
        raw.push_str("{\"graph_fp\":\"00000000000000");
        fs::write(&path, raw).expect("write");

        let s2 = PlacementStore::open(&path, 7).expect("reopen");
        assert_eq!(s2.load_stats(), (1, 1));
        assert!(s2.get((1, 2)).is_some());
    }

    #[test]
    fn entries_from_other_weights_are_filtered_out() {
        let path = tmp("weights");
        let mut s = PlacementStore::open(&path, 7).expect("open");
        s.append((1, 2), "vgg16", "reduced", rank(&[&[0]])).expect("append");
        drop(s);

        let other = PlacementStore::open(&path, 8).expect("reopen");
        assert_eq!(other.load_stats(), (0, 1));
        assert!(other.get((1, 2)).is_none());
    }

    #[test]
    fn append_is_visible_without_reopen() {
        let path = tmp("visible");
        let mut s = PlacementStore::open(&path, 7).expect("open");
        assert!(s.is_empty());
        s.append((9, 9), "bert-base", "reduced", rank(&[&[4, 3]])).expect("append");
        assert_eq!(s.len(), 1);
        assert_eq!(*s.get((9, 9)).expect("entry"), vec![vec![4, 3]]);
    }
}
