//! The serve loop: placement-as-a-service over the mars-net framed
//! protocol.
//!
//! One accept loop, one handler thread per connection, one shared
//! [`PlacementEngine`] behind a mutex. The mutex is the determinism
//! argument for concurrent serving: every query runs the full
//! lookup-or-infer-then-insert sequence atomically, so N concurrent
//! identical requests resolve to one cold inference and N−1 hot hits,
//! all returning the same `Arc`'d ranking — responses are
//! byte-identical regardless of arrival order, and the answering tier
//! never appears in the response bytes.
//!
//! Handshake: the client opens with [`Msg::Hello`]; the server rejects
//! a version mismatch with [`Msg::Error`] and otherwise echoes
//! `Hello { version: PROTOCOL_VERSION }` (serving needs no
//! [`Msg::Welcome`] — that message carries a worker environment
//! recipe). Then any number of [`Msg::PlaceRequest`]s, answered in
//! arrival order per connection. [`Msg::Shutdown`] is acknowledged
//! with `Shutdown` and stops the accept loop; handler threads drain
//! until their clients hang up.

use crate::engine::{EngineStats, PlacementEngine};
use mars_net::msg::{Msg, PROTOCOL_VERSION};
use mars_net::transport::{recv_msg, send_msg, Conn, Listener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Request-latency histogram bucket edges, seconds. Cache hits land in
/// the microsecond buckets, cold inference in the millisecond ones.
const LATENCY_EDGES: [f64; 11] = [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1.0];

/// How often the accept loop re-checks the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(100);

/// Serve-loop tuning knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeOptions {
    /// Stop accepting new connections once this many requests have
    /// been answered (existing connections drain). `None` serves until
    /// a [`Msg::Shutdown`] arrives.
    pub max_requests: Option<u64>,
}

/// What the serve loop did, returned when it exits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Placement requests answered (excluding errors).
    pub requests: u64,
    /// Per-tier engine counts.
    pub engine: EngineStats,
}

struct Shared {
    engine: Mutex<PlacementEngine>,
    stop: AtomicBool,
    served: AtomicU64,
    max_requests: Option<u64>,
}

/// Run the serve loop on `listener` until a client sends
/// [`Msg::Shutdown`] (or `opts.max_requests` is reached), then join
/// every handler thread and report what happened.
pub fn serve(listener: &Listener, engine: PlacementEngine, opts: ServeOptions) -> ServeStats {
    let shared = Arc::new(Shared {
        engine: Mutex::new(engine),
        stop: AtomicBool::new(false),
        served: AtomicU64::new(0),
        max_requests: opts.max_requests,
    });
    let mut handlers = Vec::new();
    let mut connections = 0u64;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept_timeout(ACCEPT_POLL) {
            Ok(conn) => {
                connections += 1;
                mars_telemetry::counter("serve.connections").inc();
                let shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || handle_conn(conn, &shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
            Err(e) => {
                mars_telemetry::event("serve.accept_error", &[("error", e.to_string().into())]);
                break;
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    let engine_stats = shared.engine.lock().unwrap_or_else(|e| e.into_inner()).stats();
    ServeStats { connections, requests: shared.served.load(Ordering::SeqCst), engine: engine_stats }
}

/// Serve one connection to completion. Any protocol or request error
/// is answered with [`Msg::Error`] and closes the connection; a clean
/// client hang-up just returns.
fn handle_conn(mut conn: Conn, shared: &Shared) {
    // Handshake: client Hello in, server Hello (or version Error) out.
    match recv_msg(&mut conn) {
        Ok(Some(Msg::Hello { version })) if version == PROTOCOL_VERSION => {
            if send_msg(&mut conn, &Msg::Hello { version: PROTOCOL_VERSION }).is_err() {
                return;
            }
        }
        Ok(Some(Msg::Hello { version })) => {
            let message =
                format!("protocol version mismatch: client {version}, server {PROTOCOL_VERSION}");
            let _ = send_msg(&mut conn, &Msg::Error { message });
            return;
        }
        Ok(Some(_)) => {
            let _ = send_msg(
                &mut conn,
                &Msg::Error { message: "expected Hello as the first message".into() },
            );
            return;
        }
        Ok(None) | Err(_) => return,
    }

    loop {
        let msg = match recv_msg(&mut conn) {
            Ok(Some(msg)) => msg,
            Ok(None) => return, // clean hang-up
            Err(_) => return,
        };
        match msg {
            Msg::PlaceRequest { unit, workload, profile, cluster, top_k } => {
                let _span = mars_telemetry::span("serve.request");
                let start = Instant::now();
                let placed = {
                    let mut engine = shared.engine.lock().unwrap_or_else(|e| e.into_inner());
                    engine.place(&workload, &profile, &cluster)
                };
                match placed {
                    Ok(placed) => {
                        let k = top_k.max(1);
                        let ranking: Vec<Vec<usize>> = placed
                            .ranking
                            .iter()
                            .map(|row| row.iter().copied().take(k).collect())
                            .collect();
                        let resp = Msg::PlaceResponse {
                            unit,
                            graph_fp: placed.graph_fp,
                            cluster_fp: placed.cluster_fp,
                            weights_fp: placed.weights_fp,
                            ranking,
                        };
                        if send_msg(&mut conn, &resp).is_err() {
                            return;
                        }
                        mars_telemetry::counter("serve.requests").inc();
                        mars_telemetry::histogram("serve.latency_s", &LATENCY_EDGES)
                            .observe(start.elapsed().as_secs_f64());
                        let served = shared.served.fetch_add(1, Ordering::SeqCst) + 1;
                        if shared.max_requests.is_some_and(|max| served >= max) {
                            shared.stop.store(true, Ordering::SeqCst);
                        }
                    }
                    Err(message) => {
                        mars_telemetry::counter("serve.request_errors").inc();
                        let _ = send_msg(&mut conn, &Msg::Error { message });
                        return;
                    }
                }
            }
            Msg::Shutdown => {
                shared.stop.store(true, Ordering::SeqCst);
                let _ = send_msg(&mut conn, &Msg::Shutdown);
                return;
            }
            other => {
                let message = format!("unexpected message in serve loop: {other:?}");
                let _ = send_msg(&mut conn, &Msg::Error { message });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_core::{Agent, AgentKind, MarsConfig};
    use mars_graph::features::FEATURE_DIM;
    use mars_net::transport::Addr;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;
    use mars_sim::Cluster;

    fn tiny_engine(seed: u64) -> PlacementEngine {
        let mut cfg = MarsConfig::small();
        cfg.encoder_hidden = 16;
        cfg.placer_hidden = 16;
        cfg.attn_dim = 8;
        cfg.segment_size = 16;
        cfg.num_groups = 4;
        cfg.dgi_iters = 10;
        let mut rng = StdRng::seed_from_u64(seed);
        let agent = Agent::new(AgentKind::Mars, cfg, FEATURE_DIM, 5, &mut rng);
        PlacementEngine::new(agent, 5, 32)
    }

    fn request(unit: u64, workload: &str, top_k: usize) -> Msg {
        Msg::PlaceRequest {
            unit,
            workload: workload.into(),
            profile: "reduced".into(),
            cluster: Cluster::p100_quad(),
            top_k,
        }
    }

    fn handshake(conn: &mut Conn) {
        send_msg(conn, &Msg::Hello { version: PROTOCOL_VERSION }).expect("hello");
        assert_eq!(
            recv_msg(conn).expect("hello back"),
            Some(Msg::Hello { version: PROTOCOL_VERSION })
        );
    }

    #[cfg(unix)]
    fn unix_listener(name: &str) -> (Listener, Addr) {
        let path = std::env::temp_dir()
            .join(format!("mars-serve-test-{}-{name}.sock", std::process::id()));
        let addr = Addr::Unix(path);
        (Listener::bind(&addr).expect("bind"), addr)
    }

    #[cfg(unix)]
    #[test]
    fn concurrent_clients_get_byte_identical_responses() {
        let (listener, addr) = unix_listener("concurrent");
        let server =
            std::thread::spawn(move || serve(&listener, tiny_engine(21), ServeOptions::default()));

        let n = 4;
        let mut clients = Vec::new();
        for unit in 0..n {
            let addr = addr.clone();
            clients.push(std::thread::spawn(move || {
                let mut conn = Conn::connect(&addr).expect("connect");
                handshake(&mut conn);
                send_msg(&mut conn, &request(unit, "inception_v3", 5)).expect("send");
                let resp = recv_msg(&mut conn).expect("recv").expect("response");
                match resp {
                    Msg::PlaceResponse { unit: u, ranking, graph_fp, cluster_fp, weights_fp } => {
                        assert_eq!(u, unit, "unit echoed");
                        (ranking, graph_fp, cluster_fp, weights_fp)
                    }
                    other => panic!("unexpected response: {other:?}"),
                }
            }));
        }
        let answers: Vec<_> = clients.into_iter().map(|c| c.join().expect("join")).collect();
        for a in &answers[1..] {
            assert_eq!(a, &answers[0], "responses diverged across concurrent clients");
        }

        // Shutdown and inspect the tier split: one inference, rest cached.
        let mut conn = Conn::connect(&addr).expect("connect");
        handshake(&mut conn);
        send_msg(&mut conn, &Msg::Shutdown).expect("send shutdown");
        assert_eq!(recv_msg(&mut conn).expect("ack"), Some(Msg::Shutdown));
        drop(conn);
        let stats = server.join().expect("server join");
        assert_eq!(stats.requests, n);
        assert_eq!(stats.engine.miss, 1, "identical requests deduplicate");
        assert_eq!(stats.engine.hot, n - 1);
    }

    #[cfg(unix)]
    #[test]
    fn top_k_truncates_and_version_mismatch_is_rejected() {
        let (listener, addr) = unix_listener("topk");
        let server = std::thread::spawn(move || {
            serve(&listener, tiny_engine(22), ServeOptions { max_requests: Some(2) })
        });

        let mut conn = Conn::connect(&addr).expect("connect");
        handshake(&mut conn);
        send_msg(&mut conn, &request(7, "vgg16", 1)).expect("send");
        let Some(Msg::PlaceResponse { ranking: greedy, .. }) = recv_msg(&mut conn).expect("recv")
        else {
            panic!("expected a response");
        };
        assert!(greedy.iter().all(|row| row.len() == 1), "top_k=1 rows");
        send_msg(&mut conn, &request(8, "vgg16", 3)).expect("send");
        let Some(Msg::PlaceResponse { ranking: top3, .. }) = recv_msg(&mut conn).expect("recv")
        else {
            panic!("expected a response");
        };
        assert!(top3.iter().all(|row| row.len() == 3), "top_k=3 rows");
        for (g, t) in greedy.iter().zip(&top3) {
            assert_eq!(g[0], t[0], "greedy head stable across top_k");
        }
        drop(conn);

        // max_requests reached → accept loop stops; a stale-version
        // client straggling in before the stop still gets a clean error.
        let stats = server.join().expect("server join");
        assert_eq!(stats.requests, 2);

        let (listener, addr) = unix_listener("version");
        let server = std::thread::spawn(move || {
            serve(&listener, tiny_engine(22), ServeOptions { max_requests: Some(1) })
        });
        let mut conn = Conn::connect(&addr).expect("connect");
        send_msg(&mut conn, &Msg::Hello { version: PROTOCOL_VERSION + 1 }).expect("send");
        let Some(Msg::Error { message }) = recv_msg(&mut conn).expect("recv") else {
            panic!("expected a version error");
        };
        assert!(message.contains("version mismatch"), "unexpected error: {message}");
        drop(conn);
        let mut conn = Conn::connect(&addr).expect("connect");
        handshake(&mut conn);
        send_msg(&mut conn, &request(9, "vgg16", 1)).expect("send");
        let _ = recv_msg(&mut conn).expect("recv");
        drop(conn);
        server.join().expect("server join");
    }
}
