//! The tiered placement engine: hot LRU → warm store → cold inference.
//!
//! [`PlacementEngine::place`] answers one query and reports which tier
//! answered it. The tier is telemetry only — it never appears in the
//! response bytes, and all three tiers return the identical ranking
//! for the same `(graph, cluster, weights)` triple: the cold path is
//! bit-deterministic (`mars_core::infer` parity tests), the hot tier
//! stores exactly what cold produced, and the warm tier is filtered to
//! this engine's weights fingerprint on load.
//!
//! Concurrent identical requests deduplicate by construction: the
//! server wraps the engine in a mutex, so the first request through
//! runs cold inference and every later identical request hits the hot
//! tier. The concurrency property test below pins that down — N
//! threads, one miss, N−1 hot hits, byte-identical rankings.

use crate::cache::PlacementCache;
use crate::fingerprint::{cluster_fingerprint, graph_fingerprint};
use crate::store::PlacementStore;
use mars_core::{Agent, PolicyInference, WorkloadInput};
use mars_graph::generators::{Profile, Workload};
use mars_sim::Cluster;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A full per-op device ranking, shared between cache tiers and
/// in-flight responses without copying.
pub type Ranking = Arc<Vec<Vec<usize>>>;

/// Which tier answered a query. Telemetry/stats only — responses are
/// byte-identical regardless of tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// In-memory LRU hit.
    Hot,
    /// Persistent-store hit (promoted to hot).
    Warm,
    /// Full policy inference (inserted into hot + store).
    Cold,
}

/// Per-tier answer counts since engine construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered from the in-memory LRU.
    pub hot: u64,
    /// Queries answered from the persistent store.
    pub warm: u64,
    /// Queries that ran policy inference.
    pub miss: u64,
}

struct GraphEntry {
    input: WorkloadInput,
    graph_fp: u64,
}

/// One answered query: the ranking plus everything a
/// [`Msg::PlaceResponse`](mars_net::msg::Msg) needs to echo back.
#[derive(Clone, Debug)]
pub struct Placed {
    /// Full per-op device ranking (untruncated).
    pub ranking: Ranking,
    /// Which tier answered (telemetry only).
    pub tier: Tier,
    /// Graph half of the cache key.
    pub graph_fp: u64,
    /// Cluster half of the cache key.
    pub cluster_fp: u64,
    /// Fingerprint of the weights that produced the ranking.
    pub weights_fp: u64,
}

/// Tiered placement query engine over one trained agent.
pub struct PlacementEngine {
    agent: Agent,
    num_devices: usize,
    infer: PolicyInference,
    hot: PlacementCache,
    store: Option<PlacementStore>,
    /// Built graphs memoized per `(workload, profile)` name pair:
    /// graph generation is deterministic, so each recipe is built once.
    graphs: HashMap<(String, String), GraphEntry>,
    weights_fp: u64,
    stats: EngineStats,
}

impl PlacementEngine {
    /// Engine over `agent` (built for `num_devices`-device clusters)
    /// with a hot tier of `cache_capacity` rankings and no warm store.
    pub fn new(agent: Agent, num_devices: usize, cache_capacity: usize) -> Self {
        let weights_fp = mars_nn::checkpoint::fingerprint(&agent.store);
        PlacementEngine {
            agent,
            num_devices,
            infer: PolicyInference::new(),
            hot: PlacementCache::new(cache_capacity),
            store: None,
            graphs: HashMap::new(),
            weights_fp,
            stats: EngineStats::default(),
        }
    }

    /// Attach (opening or creating) the warm JSONL store at `path`.
    /// Returns `(loaded, skipped)` line counts; entries stamped with a
    /// different weights fingerprint are skipped, never replayed.
    pub fn attach_store(&mut self, path: impl AsRef<Path>) -> io::Result<(usize, usize)> {
        let store = PlacementStore::open(path, self.weights_fp)?;
        let stats = store.load_stats();
        self.store = Some(store);
        Ok(stats)
    }

    /// Fingerprint of the weights this engine serves
    /// (see [`mars_nn::checkpoint::fingerprint`]).
    pub fn weights_fp(&self) -> u64 {
        self.weights_fp
    }

    /// Action-space width: every query cluster must have exactly this
    /// many devices.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Per-tier answer counts since construction.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    fn graph_entry(&mut self, workload: Workload, profile: Profile) -> (u64, &WorkloadInput) {
        let key = (workload.name().to_string(), profile.name().to_string());
        let entry = self.graphs.entry(key).or_insert_with(|| {
            let graph = workload.build(profile);
            GraphEntry {
                graph_fp: graph_fingerprint(&graph),
                input: WorkloadInput::from_graph(&graph),
            }
        });
        (entry.graph_fp, &entry.input)
    }

    /// Answer one placement query: the full per-op device ranking for
    /// `(workload, profile)` on `cluster`, plus the tier that answered.
    pub fn place(
        &mut self,
        workload: &str,
        profile: &str,
        cluster: &Cluster,
    ) -> Result<Placed, String> {
        let _span = mars_telemetry::span("serve.engine.place");
        let wl =
            Workload::parse(workload).ok_or_else(|| format!("unknown workload '{workload}'"))?;
        let pr = Profile::parse(profile).ok_or_else(|| format!("unknown profile '{profile}'"))?;
        if cluster.num_devices() != self.num_devices {
            return Err(format!(
                "cluster has {} devices but the policy was trained for {}",
                cluster.num_devices(),
                self.num_devices
            ));
        }
        let cluster_fp = cluster_fingerprint(cluster);
        let (graph_fp, _) = self.graph_entry(wl, pr);
        let key = (graph_fp, cluster_fp);
        let done = |ranking: Ranking, tier: Tier, weights_fp: u64| Placed {
            ranking,
            tier,
            graph_fp,
            cluster_fp,
            weights_fp,
        };

        if let Some(ranking) = self.hot.get(key) {
            mars_telemetry::counter("serve.cache.hot").inc();
            self.stats.hot += 1;
            return Ok(done(ranking, Tier::Hot, self.weights_fp));
        }
        if let Some(ranking) = self.store.as_ref().and_then(|s| s.get(key)) {
            mars_telemetry::counter("serve.cache.warm").inc();
            self.stats.warm += 1;
            self.hot.insert(key, ranking.clone());
            return Ok(done(ranking, Tier::Warm, self.weights_fp));
        }

        mars_telemetry::counter("serve.cache.miss").inc();
        self.stats.miss += 1;
        // Re-borrow for the cold path: the memo entry is guaranteed
        // present after graph_entry above.
        let name_key = (wl.name().to_string(), pr.name().to_string());
        let input = &self.graphs[&name_key].input;
        let ranking: Ranking = Arc::new(self.infer.rank_placements(&self.agent, input));
        self.hot.insert(key, ranking.clone());
        if let Some(store) = self.store.as_mut() {
            if store.append(key, wl.name(), pr.name(), ranking.clone()).is_err() {
                // Serving must not die with the answer in hand; a
                // failed append just means a warm miss after restart.
                mars_telemetry::counter("serve.store.append_failed").inc();
            }
        }
        Ok(done(ranking, Tier::Cold, self.weights_fp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_core::{AgentKind, MarsConfig};
    use mars_graph::features::FEATURE_DIM;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;
    use std::sync::Mutex;

    fn tiny_agent(seed: u64) -> Agent {
        let mut cfg = MarsConfig::small();
        cfg.encoder_hidden = 16;
        cfg.placer_hidden = 16;
        cfg.attn_dim = 8;
        cfg.segment_size = 16;
        cfg.num_groups = 4;
        cfg.dgi_iters = 10;
        let mut rng = StdRng::seed_from_u64(seed);
        Agent::new(AgentKind::Mars, cfg, FEATURE_DIM, 5, &mut rng)
    }

    fn engine(seed: u64, capacity: usize) -> PlacementEngine {
        PlacementEngine::new(tiny_agent(seed), 5, capacity)
    }

    #[test]
    fn tiers_progress_cold_hot_and_warm_across_restart() {
        let dir = std::env::temp_dir().join(format!("mars-serve-engine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("tiers.jsonl");

        let cluster = Cluster::p100_quad();
        let mut e = engine(3, 8);
        e.attach_store(&path).expect("attach");
        let p1 = e.place("inception_v3", "reduced", &cluster).expect("place");
        let p2 = e.place("inception_v3", "reduced", &cluster).expect("place");
        assert_eq!((p1.tier, p2.tier), (Tier::Cold, Tier::Hot));
        assert_eq!(p1.ranking, p2.ranking);
        assert_eq!(p1.weights_fp, e.weights_fp());
        assert_eq!(e.stats(), EngineStats { hot: 1, warm: 0, miss: 1 });

        // Fresh engine, same weights, same store: warm hit, same bytes.
        let mut e2 = engine(3, 8);
        assert_eq!(e2.weights_fp(), e.weights_fp(), "same seed, same weights");
        assert_eq!(e2.attach_store(&path).expect("attach"), (1, 0));
        let p3 = e2.place("inception_v3", "reduced", &cluster).expect("place");
        assert_eq!(p3.tier, Tier::Warm);
        assert_eq!(*p3.ranking, *p1.ranking, "warm ranking byte-identical to cold");

        // Different weights must not replay the stored entry.
        let mut e3 = engine(4, 8);
        assert_eq!(e3.attach_store(&path).expect("attach"), (0, 1));
        let p4 = e3.place("inception_v3", "reduced", &cluster).expect("place");
        assert_eq!(p4.tier, Tier::Cold);
    }

    #[test]
    fn concurrent_identical_requests_infer_once_and_agree() {
        let shared = Arc::new(Mutex::new(engine(5, 8)));
        let n = 8;
        let mut handles = Vec::new();
        for _ in 0..n {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                let mut eng = shared.lock().expect("lock");
                eng.place("vgg16", "reduced", &Cluster::p100_quad()).expect("place").ranking
            }));
        }
        let rankings: Vec<Ranking> = handles.into_iter().map(|h| h.join().expect("join")).collect();
        for r in &rankings[1..] {
            assert_eq!(**r, *rankings[0], "concurrent responses diverged");
        }
        let stats = shared.lock().expect("lock").stats();
        assert_eq!(stats.miss, 1, "identical requests deduplicate to one inference");
        assert_eq!(stats.hot, n - 1);
    }

    #[test]
    fn evictions_under_tiny_capacity_never_change_response_bytes() {
        let mut e = engine(6, 1); // hot tier holds exactly one ranking
        let cluster = Cluster::p100_quad();
        let first_a = e.place("inception_v3", "reduced", &cluster).expect("place").ranking;
        let first_b = e.place("vgg16", "reduced", &cluster).expect("place").ranking;
        for _ in 0..3 {
            // Each round evicts the other workload's entry and re-infers.
            let pa = e.place("inception_v3", "reduced", &cluster).expect("place");
            let pb = e.place("vgg16", "reduced", &cluster).expect("place");
            assert_eq!((pa.tier, pb.tier), (Tier::Cold, Tier::Cold), "capacity 1 re-infers");
            assert_eq!(*pa.ranking, *first_a, "eviction changed inception bytes");
            assert_eq!(*pb.ranking, *first_b, "eviction changed vgg bytes");
        }
    }

    #[test]
    fn failed_device_changes_the_cache_key_but_not_determinism() {
        let mut e = engine(7, 8);
        let healthy = Cluster::p100_quad();
        let mut degraded = Cluster::p100_quad();
        degraded.fail_device(3);
        let t1 = e.place("seq2seq", "reduced", &healthy).expect("place").tier;
        let t2 = e.place("seq2seq", "reduced", &degraded).expect("place").tier;
        let t3 = e.place("seq2seq", "reduced", &healthy).expect("place").tier;
        assert_eq!((t1, t2, t3), (Tier::Cold, Tier::Cold, Tier::Hot));
    }

    #[test]
    fn rejects_unknown_workloads_and_mismatched_clusters() {
        let mut e = engine(8, 8);
        assert!(e.place("not-a-workload", "reduced", &Cluster::p100_quad()).is_err());
        assert!(e.place("vgg16", "not-a-profile", &Cluster::p100_quad()).is_err());
        let two = Cluster::new(
            vec![mars_sim::DeviceSpec::xeon(), mars_sim::DeviceSpec::p100(0)],
            mars_sim::LinkSpec::pcie(),
        );
        let err = e.place("vgg16", "reduced", &two).expect_err("device-count mismatch");
        assert!(err.contains("2 devices"), "unexpected error: {err}");
    }
}
