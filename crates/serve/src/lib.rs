#![warn(missing_docs)]
//! Placement-as-a-service: the layer that turns a trained agent into a
//! queryable engine (ROADMAP north-star item 1).
//!
//! A query is `(workload, profile, cluster) → per-op device ranking`.
//! Three tiers answer it, cheapest first:
//!
//! 1. **Hot** — an in-memory LRU ([`cache::PlacementCache`]) keyed by
//!    `(graph fingerprint, cluster fingerprint)`, generalizing the
//!    eval memo of `mars_sim::EvalCache` from evaluation results to
//!    policy outputs.
//! 2. **Warm** — a persistent JSONL-backed store
//!    ([`store::PlacementStore`]) with crash-safe append and
//!    load-on-start, stamped with the weights fingerprint so stale
//!    entries from other checkpoints are never replayed.
//! 3. **Cold** — batched policy inference through
//!    [`mars_core::PolicyInference`], the no-tape forward with pooled
//!    activation buffers.
//!
//! All three tiers return byte-identical rankings for the same
//! `(graph, cluster, weights)` triple: the cold path is bit-identical
//! to the training-time forward (pinned in `mars_core::infer`), and
//! the caches store exactly what the cold path produced. The serve
//! loop ([`server::serve`]) speaks the `mars-net` framed protocol
//! (`PlaceRequest`/`PlaceResponse`, protocol v3) with one thread per
//! connection over a shared engine.

pub mod cache;
pub mod engine;
pub mod fingerprint;
pub mod server;
pub mod store;

pub use cache::PlacementCache;
pub use engine::{EngineStats, Placed, PlacementEngine, Ranking, Tier};
pub use fingerprint::{cluster_fingerprint, graph_fingerprint};
pub use server::{serve, ServeOptions, ServeStats};
pub use store::PlacementStore;
