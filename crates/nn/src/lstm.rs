//! LSTM cell, unidirectional and bidirectional sequence runners.
//!
//! The Mars placer is "a bidirectional LSTM layer as the encoder and a
//! uni-directional LSTM layer as the decoder" (§4.2), processing the
//! operation sequence segment-by-segment with the encoder hidden state
//! carried across segments. [`LstmState`] makes that carry-over
//! explicit: `Lstm::run` accepts an initial state and returns the final
//! one.
//!
//! Sequences are represented as `T × F` matrices (one row per element);
//! this matches how node representations come out of the GCN encoder.

use crate::ctx::FwdCtx;
use crate::param::{ParamId, ParamStore};
use mars_autograd::Var;
use mars_rng::Rng;
use mars_tensor::{init, Matrix};

/// Carried `(h, c)` state of an LSTM, as tape variables (each `1 × H`).
#[derive(Clone, Copy)]
pub struct LstmState {
    /// Hidden state.
    pub h: Var,
    /// Cell state.
    pub c: Var,
}

/// A single LSTM cell with fused gate weights.
///
/// Gate layout inside the fused `4H`-wide pre-activation is
/// `[i | f | g | o]`.
pub struct LstmCell {
    w_ih: ParamId,
    w_hh: ParamId,
    b: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl LstmCell {
    /// Register the cell parameters. The forget-gate bias starts at 1.0
    /// (standard trick for gradient flow over long sequences).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w_ih =
            store.add(format!("{name}.w_ih"), init::xavier_uniform(input_dim, 4 * hidden_dim, rng));
        let w_hh = store
            .add(format!("{name}.w_hh"), init::xavier_uniform(hidden_dim, 4 * hidden_dim, rng));
        let mut bias = Matrix::zeros(1, 4 * hidden_dim);
        for cidx in hidden_dim..2 * hidden_dim {
            bias.set(0, cidx, 1.0);
        }
        let b = store.add(format!("{name}.b"), bias);
        LstmCell { w_ih, w_hh, b, input_dim, hidden_dim }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Zero initial state.
    pub fn zero_state(&self, ctx: &mut FwdCtx<'_>) -> LstmState {
        let h = ctx.tape.constant(Matrix::zeros(1, self.hidden_dim));
        let c = ctx.tape.constant(Matrix::zeros(1, self.hidden_dim));
        LstmState { h, c }
    }

    /// One step: `x` is `1 × input_dim`; returns the new state.
    ///
    /// Routed through the fused [`mars_autograd::Tape::lstm_seq`]
    /// kernel with `T = 1`: one packed pass over the concatenated
    /// `[i|f|g|o]` gate block (plus two row slices for the state)
    /// instead of the ~20 tape ops of the composed formulation —
    /// this is the decoder hot path, stepped once per placed op.
    /// Forward values are bit-identical to the composed ops: the fused
    /// gate math associates `(x·W_ih + h·W_hh) + b`, `(f·c) + (i·g)`
    /// and `o·tanh(c)` exactly like the op-by-op tape did.
    pub fn step(&self, ctx: &mut FwdCtx<'_>, x: Var, state: LstmState) -> LstmState {
        debug_assert_eq!(ctx.tape.value(x).shape(), (1, self.input_dim));
        let w_ih = ctx.p(self.w_ih);
        let w_hh = ctx.p(self.w_hh);
        let b = ctx.p(self.b);
        // 2 × H: row 0 is h_1, row 1 is the final cell state c_1.
        let out = ctx.tape.lstm_seq(x, w_ih, w_hh, b, state.h, state.c);
        let h = ctx.tape.slice_rows(out, 0, 1);
        let c = ctx.tape.slice_rows(out, 1, 2);
        LstmState { h, c }
    }
}

/// Unidirectional LSTM over a `T × F` sequence.
pub struct Lstm {
    /// The underlying cell.
    pub cell: LstmCell,
}

impl Lstm {
    /// Register a new LSTM.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Lstm { cell: LstmCell::new(store, name, input_dim, hidden_dim, rng) }
    }

    /// Run over the whole sequence. Returns the stacked hidden states
    /// (`T × H`) and the final state (for segment carry-over).
    ///
    /// Uses the fused [`mars_autograd::Tape::lstm_seq`] op (one tape
    /// node for the whole sequence, hand-written BPTT) — verified
    /// equivalent to the step-composed rollout in
    /// `mars-autograd/tests/lstm_fused.rs`.
    pub fn run(&self, ctx: &mut FwdCtx<'_>, xs: Var, init: Option<LstmState>) -> (Var, LstmState) {
        let _span = mars_telemetry::span("nn.lstm.run");
        let t_len = ctx.tape.value(xs).rows();
        assert!(t_len > 0, "Lstm::run on empty sequence");
        let state = init.unwrap_or_else(|| self.cell.zero_state(ctx));
        let w_ih = ctx.p(self.cell.w_ih);
        let w_hh = ctx.p(self.cell.w_hh);
        let b = ctx.p(self.cell.b);
        let out = ctx.tape.lstm_seq(xs, w_ih, w_hh, b, state.h, state.c);
        let hs = ctx.tape.slice_rows(out, 0, t_len);
        let h_final = ctx.tape.slice_rows(out, t_len - 1, t_len);
        let c_final = ctx.tape.slice_rows(out, t_len, t_len + 1);
        (hs, LstmState { h: h_final, c: c_final })
    }
}

/// Bidirectional LSTM: forward and backward passes concatenated
/// (`T × 2H` output).
pub struct BiLstm {
    /// Forward-direction cell.
    pub fwd: LstmCell,
    /// Backward-direction cell.
    pub bwd: LstmCell,
}

impl BiLstm {
    /// Register a new bidirectional LSTM.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        BiLstm {
            fwd: LstmCell::new(store, &format!("{name}.fwd"), input_dim, hidden_dim, rng),
            bwd: LstmCell::new(store, &format!("{name}.bwd"), input_dim, hidden_dim, rng),
        }
    }

    /// Run over the sequence; `init` seeds the *forward* direction
    /// (segment carry-over in the Mars placer). Returns `T × 2H`
    /// outputs and the forward direction's final state.
    ///
    /// Both directions use the fused
    /// [`mars_autograd::Tape::lstm_seq`] op; the backward direction
    /// processes a row-reversed view of the input and un-reverses its
    /// outputs.
    pub fn run(&self, ctx: &mut FwdCtx<'_>, xs: Var, init: Option<LstmState>) -> (Var, LstmState) {
        let _span = mars_telemetry::span("nn.lstm.bi_run");
        let t_len = ctx.tape.value(xs).rows();
        assert!(t_len > 0, "BiLstm::run on empty sequence");
        let reversed: Vec<usize> = (0..t_len).rev().collect();

        // Forward direction.
        let state_f = init.unwrap_or_else(|| self.fwd.zero_state(ctx));
        let wf_ih = ctx.p(self.fwd.w_ih);
        let wf_hh = ctx.p(self.fwd.w_hh);
        let bf = ctx.p(self.fwd.b);
        let out_f = ctx.tape.lstm_seq(xs, wf_ih, wf_hh, bf, state_f.h, state_f.c);
        let hs_f = ctx.tape.slice_rows(out_f, 0, t_len);
        let hf_final = ctx.tape.slice_rows(out_f, t_len - 1, t_len);
        let cf_final = ctx.tape.slice_rows(out_f, t_len, t_len + 1);

        // Backward direction over the reversed sequence.
        let state_b = self.bwd.zero_state(ctx);
        let wb_ih = ctx.p(self.bwd.w_ih);
        let wb_hh = ctx.p(self.bwd.w_hh);
        let bb = ctx.p(self.bwd.b);
        let xs_rev = ctx.tape.gather_rows(xs, reversed.clone());
        let out_b = ctx.tape.lstm_seq(xs_rev, wb_ih, wb_hh, bb, state_b.h, state_b.c);
        let hs_b_rev = ctx.tape.slice_rows(out_b, 0, t_len);
        let hs_b = ctx.tape.gather_rows(hs_b_rev, reversed);

        let stacked = ctx.tape.concat_cols(hs_f, hs_b);
        (stacked, LstmState { h: hf_final, c: cf_final })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Adam;
    use crate::linear::Linear;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;

    #[test]
    fn step_shapes_and_state_carry() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lstm = Lstm::new(&mut store, "l", 3, 5, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let xs = ctx.tape.constant(Matrix::full(4, 3, 0.1));
        let (out, state) = lstm.run(&mut ctx, xs, None);
        assert_eq!(ctx.tape.value(out).shape(), (4, 5));
        assert_eq!(ctx.tape.value(state.h).shape(), (1, 5));
        // Final hidden row equals last stacked row.
        let last = ctx.tape.value(out).row(3).to_vec();
        assert_eq!(ctx.tape.value(state.h).as_slice(), &last[..]);
    }

    #[test]
    fn segment_carry_matches_full_run() {
        // Running [x0..x3] in one shot must equal running [x0..x1] then
        // [x2..x3] with the carried state — the exact property the
        // segment-level placer relies on.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(&mut store, "l", 2, 4, &mut rng);
        let xs = init::uniform(4, 2, 1.0, &mut rng);

        let mut ctx = FwdCtx::new(&store);
        let x_all = ctx.tape.constant(xs.clone());
        let (out_full, _) = lstm.run(&mut ctx, x_all, None);
        let full = ctx.tape.value(out_full).clone();

        let mut ctx2 = FwdCtx::new(&store);
        let x1 = ctx2.tape.constant(xs.slice_rows(0, 2));
        let (o1, s1) = lstm.run(&mut ctx2, x1, None);
        let x2 = ctx2.tape.constant(xs.slice_rows(2, 4));
        let (o2, _) = lstm.run(&mut ctx2, x2, Some(s1));
        let seg = ctx2.tape.value(o1).vcat(ctx2.tape.value(o2));

        assert!(full.max_abs_diff(&seg) < 1e-6);
    }

    #[test]
    fn bilstm_output_width_and_direction() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let bi = BiLstm::new(&mut store, "b", 3, 4, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let xs = ctx.tape.constant(init::uniform(5, 3, 1.0, &mut rng));
        let (out, _) = bi.run(&mut ctx, xs, None);
        assert_eq!(ctx.tape.value(out).shape(), (5, 8));
    }

    #[test]
    fn learns_to_remember_first_token() {
        // Sequence of ±1 scalars; target = sign of the FIRST element.
        // Solvable only if state actually propagates through time.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(&mut store, "l", 1, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 1, true, &mut rng);
        let mut adam = Adam::new(0.02);
        let seqs: Vec<(Matrix, f32)> = (0..8)
            .map(|i| {
                let first = if i % 2 == 0 { 1.0 } else { -1.0 };
                let data = vec![first, 0.3, -0.2, 0.1, -0.4];
                (Matrix::col_vector(&data), (first + 1.0) / 2.0)
            })
            .collect();
        let mut last_loss = f32::INFINITY;
        for _ in 0..150 {
            let mut total = 0.0;
            for (xs, target) in &seqs {
                let mut ctx = FwdCtx::new(&store);
                let x = ctx.tape.constant(xs.clone());
                let (_, state) = lstm.run(&mut ctx, x, None);
                let logit = head.forward(&mut ctx, state.h);
                let t = std::sync::Arc::new(Matrix::from_vec(1, 1, vec![*target]));
                let loss = ctx.tape.bce_with_logits(logit, t);
                total += ctx.tape.scalar(loss);
                let grads = ctx.into_grads(loss, 1.0 / seqs.len() as f32);
                crate::ctx::apply_grads(&mut store, grads);
            }
            last_loss = total / seqs.len() as f32;
            adam.step(&mut store, 5.0);
        }
        assert!(last_loss < 0.1, "LSTM failed to learn copy task: loss {last_loss}");
    }
}
