//! Small tape-level conveniences shared by the layers.

use mars_autograd::{Tape, Var};

/// Column slice `[start, end)` implemented as
/// `transpose → slice_rows → transpose`.
///
/// The LSTM cell uses this to split the fused `x·W_ih + h·W_hh + b`
/// pre-activation into its four gates; the extra copies are negligible
/// next to the matmuls.
pub fn slice_cols(t: &mut Tape, x: Var, start: usize, end: usize) -> Var {
    let xt = t.transpose(x);
    let sl = t.slice_rows(xt, start, end);
    t.transpose(sl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_autograd::check::check_gradients_default;
    use mars_tensor::Matrix;

    #[test]
    fn slice_cols_values() {
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(2, 4, vec![1., 2., 3., 4., 5., 6., 7., 8.]));
        let s = slice_cols(&mut t, x, 1, 3);
        assert_eq!(t.value(s).shape(), (2, 2));
        assert_eq!(t.value(s).as_slice(), &[2., 3., 6., 7.]);
    }

    #[test]
    fn slice_cols_gradient() {
        let x = Matrix::from_vec(2, 4, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, -0.8]);
        check_gradients_default(&[x], |t, v| {
            let s = slice_cols(t, v[0], 1, 3);
            let y = t.tanh(s);
            t.mean_all(y)
        });
    }
}
