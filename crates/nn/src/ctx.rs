//! Forward-pass context: binds [`ParamStore`] parameters onto a tape.
//!
//! One [`FwdCtx`] lives for exactly one forward/backward pass. It
//! lazily inserts each parameter as a tape leaf (cached, so a parameter
//! used by several layers is a *single* leaf and its gradient
//! accumulates correctly). After the pass, [`FwdCtx::into_grads`]
//! consumes the context and hands back `(ParamId, gradient)` pairs to
//! apply to the (then mutably borrowable) store.

use crate::param::{ParamId, ParamStore};
use mars_autograd::{Tape, Var};
use mars_tensor::Matrix;
use std::collections::HashMap;

/// A parameter-binding wrapper around a [`Tape`] for one forward pass.
pub struct FwdCtx<'s> {
    /// The underlying tape; public so models can record arbitrary ops.
    pub tape: Tape,
    store: &'s ParamStore,
    bound: HashMap<ParamId, Var>,
}

impl<'s> FwdCtx<'s> {
    /// Start a forward pass against `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        FwdCtx { tape: Tape::new(), store, bound: HashMap::new() }
    }

    /// Start an inference-only forward pass: no op recording, no
    /// gradients, and [`FwdCtx::into_grads`] must not be called. Values
    /// are bit-identical to a recording pass over the same store.
    pub fn new_inference(store: &'s ParamStore) -> Self {
        FwdCtx { tape: Tape::inference(), store, bound: HashMap::new() }
    }

    /// Start a forward pass on a caller-provided tape — how the serving
    /// path reuses one inference tape (and its pooled activation
    /// buffers) across requests. Pair with [`FwdCtx::into_tape`].
    pub fn with_tape(tape: Tape, store: &'s ParamStore) -> Self {
        FwdCtx { tape, store, bound: HashMap::new() }
    }

    /// Recover the tape (e.g. to `reset_for_reuse` it between requests).
    pub fn into_tape(self) -> Tape {
        self.tape
    }

    /// Bind a parameter onto the tape (cached).
    pub fn p(&mut self, id: ParamId) -> Var {
        if let Some(&v) = self.bound.get(&id) {
            return v;
        }
        // Copy into a pooled buffer either way (bit-identical to a
        // fresh clone); recording tapes keep the grad flag.
        let v = self.tape.leaf_from(self.store.value(id), self.tape.is_recording());
        self.bound.insert(id, v);
        v
    }

    /// Read-only access to the backing store.
    pub fn store(&self) -> &ParamStore {
        self.store
    }

    /// Run backward from `loss`, consume the context, and return the
    /// parameter gradients scaled by `scale` (use e.g. `1/k` when
    /// averaging `k` sample losses). Apply them with [`apply_grads`].
    pub fn into_grads(mut self, loss: Var, scale: f32) -> Vec<(ParamId, Matrix)> {
        self.tape.backward(loss);
        let mut out = Vec::with_capacity(self.bound.len());
        for (id, var) in self.bound.drain() {
            if let Some(g) = self.tape.grad(var) {
                let g = if scale == 1.0 { g.clone() } else { g.scale(scale) };
                out.push((id, g));
            }
        }
        out
    }

    /// Like [`FwdCtx::into_grads`], but also hands the tape back so a
    /// persistent training loop can `reset_for_reuse` it and keep its
    /// scratch arena warm across updates. Parameter gradients are moved
    /// out of the tape (no clone) and scaled in place — bit-identical
    /// to [`FwdCtx::into_grads`] for the same pass.
    pub fn into_grads_and_tape(mut self, loss: Var, scale: f32) -> (Vec<(ParamId, Matrix)>, Tape) {
        self.tape.backward(loss);
        let mut out = Vec::with_capacity(self.bound.len());
        for (id, var) in self.bound.drain() {
            if let Some(mut g) = self.tape.take_grad(var) {
                if scale != 1.0 {
                    for e in g.as_mut_slice() {
                        *e *= scale;
                    }
                }
                out.push((id, g));
            }
        }
        (out, self.tape)
    }
}

/// Accumulate gradients returned by [`FwdCtx::into_grads`] into a store.
pub fn apply_grads(store: &mut ParamStore, grads: Vec<(ParamId, Matrix)>) {
    for (id, g) in grads {
        store.accumulate_grad(id, &g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_bound_once() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![2.0]));
        let mut ctx = FwdCtx::new(&store);
        let v1 = ctx.p(w);
        let v2 = ctx.p(w);
        assert_eq!(v1, v2);
    }

    #[test]
    fn shared_param_grad_accumulates() {
        // loss = sum(w·x + w·x) → dw = 2x.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![2.0]));
        let mut ctx = FwdCtx::new(&store);
        let wv = ctx.p(w);
        let x = ctx.tape.constant(Matrix::from_vec(1, 1, vec![3.0]));
        let a = ctx.tape.mul(wv, x);
        let b = ctx.tape.mul(wv, x);
        let s = ctx.tape.add(a, b);
        let loss = ctx.tape.sum_all(s);
        let grads = ctx.into_grads(loss, 1.0);
        apply_grads(&mut store, grads);
        assert_eq!(store.grad(w).get(0, 0), 6.0);
    }

    #[test]
    fn backward_scale_applied() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![1.0]));
        let mut ctx = FwdCtx::new(&store);
        let wv = ctx.p(w);
        let loss = ctx.tape.sum_all(wv);
        let grads = ctx.into_grads(loss, 0.5);
        apply_grads(&mut store, grads);
        assert_eq!(store.grad(w).get(0, 0), 0.5);
    }
}
