//! Graph convolutional layer (Kipf & Welling), Eq. (1) of the paper.
//!
//! `GCN(X, Â) = σ(D̂^{-1/2} Â D̂^{-1/2} X Θ)` — the symmetric
//! normalization is pre-applied to the adjacency (see
//! `mars_graph::CompGraph::normalized_adjacency`), so a layer here is
//! `prelu(spmm(Â_norm, X · Θ) + b)` with a learnable PReLU slope, as
//! used by the Mars encoder.

use crate::ctx::FwdCtx;
use crate::param::{ParamId, ParamStore};
use mars_autograd::Var;
use mars_rng::Rng;
use mars_tensor::ops::{BlockDiagCsr, CsrMatrix};
use mars_tensor::{init, Matrix};
use std::sync::Arc;

/// One graph-convolution layer with PReLU activation.
pub struct GcnLayer {
    w: ParamId,
    b: ParamId,
    alpha: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl GcnLayer {
    /// Register the layer's parameters. The PReLU slope starts at 0.25
    /// (the PyTorch default used by the paper's reference stack).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init::xavier_uniform(in_dim, out_dim, rng));
        let b = store.add(format!("{name}.b"), Matrix::zeros(1, out_dim));
        let alpha = store.add(format!("{name}.alpha"), Matrix::from_vec(1, 1, vec![0.25]));
        GcnLayer { w, b, alpha, in_dim, out_dim }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward: `x` is `N × in_dim`, `adj` the normalized `N × N`
    /// adjacency; result is `N × out_dim`.
    pub fn forward(&self, ctx: &mut FwdCtx<'_>, adj: &Arc<CsrMatrix>, x: Var) -> Var {
        let _span = mars_telemetry::span("nn.gcn.forward");
        let w = ctx.p(self.w);
        let xw = ctx.tape.matmul(x, w);
        let agg = ctx.tape.spmm(adj.clone(), xw);
        let b = ctx.p(self.b);
        let z = ctx.tape.add_bias(agg, b);
        let alpha = ctx.p(self.alpha);
        ctx.tape.prelu(z, alpha)
    }

    /// Batched forward over a packed graph corpus: `x` stacks the node
    /// features of N graphs (`offsets[s]..offsets[s+1]` = graph `s`),
    /// `adj` is their block-diagonal adjacency. Bit-identical per
    /// element to calling [`GcnLayer::forward`] once per graph on the
    /// matching row slices — the row-segmented ops keep the per-graph
    /// float-op order on both the forward and backward sweeps.
    pub fn forward_batch(
        &self,
        ctx: &mut FwdCtx<'_>,
        adj: &Arc<BlockDiagCsr>,
        x: Var,
        offsets: &Arc<Vec<usize>>,
    ) -> Var {
        let _span = mars_telemetry::span("nn.gcn.forward");
        let w = ctx.p(self.w);
        let xw = ctx.tape.matmul_rowseg(x, w, offsets.clone());
        let agg = ctx.tape.spmm_blockdiag(adj.clone(), xw);
        let b = ctx.p(self.b);
        let z = ctx.tape.add_bias_rowseg(agg, b, offsets.clone());
        let alpha = ctx.p(self.alpha);
        ctx.tape.prelu_rowseg(z, alpha, offsets.clone())
    }

    /// Forward without the activation (used by the final encoder layer
    /// when raw embeddings are wanted).
    pub fn forward_linear(&self, ctx: &mut FwdCtx<'_>, adj: &Arc<CsrMatrix>, x: Var) -> Var {
        let _span = mars_telemetry::span("nn.gcn.forward");
        let w = ctx.p(self.w);
        let xw = ctx.tape.matmul(x, w);
        let agg = ctx.tape.spmm(adj.clone(), xw);
        let b = ctx.p(self.b);
        ctx.tape.add_bias(agg, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;

    fn tiny_adj() -> Arc<CsrMatrix> {
        // 3-node path graph with self-loops, row-normalized.
        Arc::new(CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 0.5),
                (0, 1, 0.5),
                (1, 0, 1.0 / 3.0),
                (1, 1, 1.0 / 3.0),
                (1, 2, 1.0 / 3.0),
                (2, 1, 0.5),
                (2, 2, 0.5),
            ],
        ))
    }

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = GcnLayer::new(&mut store, "g", 4, 6, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let x = ctx.tape.constant(Matrix::full(3, 4, 0.5));
        let y = layer.forward(&mut ctx, &tiny_adj(), x);
        assert_eq!(ctx.tape.value(y).shape(), (3, 6));
    }

    #[test]
    fn aggregation_mixes_neighbors() {
        // With identity weights, node 1's output must blend nodes 0 and 2.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GcnLayer::new(&mut store, "g", 2, 2, &mut rng);
        *store.value_mut(layer.w) = Matrix::eye(2);
        let mut ctx = FwdCtx::new(&store);
        let x = ctx.tape.constant(Matrix::from_vec(3, 2, vec![3.0, 0.0, 0.0, 0.0, 0.0, 9.0]));
        let y = layer.forward_linear(&mut ctx, &tiny_adj(), x);
        let v = ctx.tape.value(y);
        assert!((v.get(1, 0) - 1.0).abs() < 1e-5);
        assert!((v.get(1, 1) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn forward_batch_matches_per_graph_forward_bitwise() {
        // Graph 0: the 3-node path; graph 1: a 2-node pair.
        let adj0 = tiny_adj();
        let adj1 = Arc::new(CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 0.5), (0, 1, 0.5), (1, 0, 0.5), (1, 1, 0.5)],
        ));
        let x0 = Matrix::from_fn(3, 4, |r, c| 0.3 * r as f32 - 0.2 * c as f32 + 0.1);
        let x1 = Matrix::from_fn(2, 4, |r, c| -0.4 * r as f32 + 0.15 * c as f32 - 0.05);

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let layer = GcnLayer::new(&mut store, "g", 4, 5, &mut rng);

        // Per-graph reference: graph 0 recorded first, then graph 1.
        let mut pctx = FwdCtx::new(&store);
        let pa = pctx.tape.constant(x0.clone());
        let ya = layer.forward(&mut pctx, &adj0, pa);
        let ma = pctx.tape.mean_rows(ya);
        let pb = pctx.tape.constant(x1.clone());
        let yb = layer.forward(&mut pctx, &adj1, pb);
        let mb = pctx.tape.mean_rows(yb);
        let pc = pctx.tape.concat_cols(ma, mb);
        let ploss = pctx.tape.sum_all(pc);
        let want = pctx.tape.value(ya).vcat(pctx.tape.value(yb));
        let pgrads = pctx.into_grads(ploss, 1.0);

        // Batched: one packed forward over the block-diagonal corpus.
        let mut bctx = FwdCtx::new(&store);
        let bd = Arc::new(BlockDiagCsr::new(vec![adj0, adj1]));
        let offs = Arc::new(vec![0usize, 3, 5]);
        let xcat = bctx.tape.constant(x0.vcat(&x1));
        let y = layer.forward_batch(&mut bctx, &bd, xcat, &offs);
        let m0 = bctx.tape.slice_mean_rows(y, 0, 3);
        let m1 = bctx.tape.slice_mean_rows(y, 3, 5);
        let bc = bctx.tape.concat_cols(m0, m1);
        let bloss = bctx.tape.sum_all(bc);
        assert_eq!(want.as_slice(), bctx.tape.value(y).as_slice(), "forward diverged");
        let bgrads = bctx.into_grads(bloss, 1.0);

        let key = |g: &[(ParamId, Matrix)], id: ParamId| -> Vec<u32> {
            g.iter()
                .find(|(i, _)| *i == id)
                .expect("grad present")
                .1
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        };
        for id in [layer.w, layer.b, layer.alpha] {
            assert_eq!(key(&pgrads, id), key(&bgrads, id), "param grad not bit-identical");
        }
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GcnLayer::new(&mut store, "g", 3, 3, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let x = ctx.tape.constant(Matrix::full(3, 3, -0.7));
        let y = layer.forward(&mut ctx, &tiny_adj(), x);
        let loss = ctx.tape.mean_all(y);
        let grads = ctx.into_grads(loss, 1.0);
        crate::ctx::apply_grads(&mut store, grads);
        assert!(store.grad(layer.w).frobenius_norm() > 0.0);
        assert!(store.grad(layer.b).frobenius_norm() > 0.0);
        // Negative inputs ensure the PReLU slope receives gradient.
        assert!(store.grad(layer.alpha).frobenius_norm() > 0.0);
    }
}
