//! Fully-connected layer.

use crate::ctx::FwdCtx;
use crate::param::{ParamId, ParamStore};
use mars_autograd::Var;
use mars_rng::Rng;
use mars_tensor::{init, Matrix};

/// `y = x · W (+ b)` with Xavier-initialized `W` and zero bias.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a new linear layer's parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init::xavier_uniform(in_dim, out_dim, rng));
        let b = bias.then(|| store.add(format!("{name}.b"), Matrix::zeros(1, out_dim)));
        Linear { w, b, in_dim, out_dim }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight parameter handle.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter handle, if the layer has one.
    pub fn bias(&self) -> Option<ParamId> {
        self.b
    }

    /// Forward pass: `x` is `m × in_dim`, result is `m × out_dim`.
    pub fn forward(&self, ctx: &mut FwdCtx<'_>, x: Var) -> Var {
        let w = ctx.p(self.w);
        let y = ctx.tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = ctx.p(b);
                ctx.tape.add_bias(y, bv)
            }
            None => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Adam;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;

    #[test]
    fn shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut store, "l", 3, 5, true, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let x = ctx.tape.constant(Matrix::zeros(4, 3));
        let y = l.forward(&mut ctx, x);
        assert_eq!(ctx.tape.value(y).shape(), (4, 5));
    }

    #[test]
    fn learns_linear_regression() {
        // Fit y = x·W* with W* = [[1],[−2]] by gradient descent.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(&mut store, "l", 2, 1, true, &mut rng);
        let mut adam = Adam::new(0.05);
        let xs = Matrix::from_vec(4, 2, vec![1., 0., 0., 1., 1., 1., 0.5, -0.5]);
        let ys = Matrix::from_vec(4, 1, vec![1., -2., -1., 1.5]);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut ctx = FwdCtx::new(&store);
            let x = ctx.tape.constant(xs.clone());
            let t = ctx.tape.constant(ys.clone());
            let pred = l.forward(&mut ctx, x);
            let err = ctx.tape.sub(pred, t);
            let sq = ctx.tape.mul(err, err);
            let loss = ctx.tape.mean_all(sq);
            last = ctx.tape.scalar(loss);
            let grads = ctx.into_grads(loss, 1.0);
            crate::ctx::apply_grads(&mut store, grads);
            adam.step(&mut store, 1.0);
        }
        assert!(last < 1e-3, "final loss {last}");
        let w = store.value(l.weight());
        assert!((w.get(0, 0) - 1.0).abs() < 0.05, "{w:?}");
        assert!((w.get(1, 0) + 2.0).abs() < 0.05, "{w:?}");
    }
}
