//! Context-based input attention (Bahdanau et al., 2015).
//!
//! The paper's placer uses "a context-based input attention mechanism
//! [2]" over the encoder outputs: at each decoding step the decoder
//! state queries every encoder position,
//!
//! ```text
//! score_j = vᵀ · tanh(W_e·e_j + W_d·d)
//! α       = softmax(score)
//! context = Σ_j α_j · e_j
//! ```
//!
//! `precompute` caches `E·W_e` once per forward pass so each decoding
//! step costs only one `1 × H` projection plus the softmax-weighted sum.

use crate::ctx::FwdCtx;
use crate::param::{ParamId, ParamStore};
use mars_autograd::Var;
use mars_rng::Rng;
use mars_tensor::init;

/// Bahdanau-style additive attention.
pub struct Attention {
    w_enc: ParamId,
    w_dec: ParamId,
    v: ParamId,
    attn_dim: usize,
}

/// Cached encoder projection for one forward pass.
#[derive(Clone, Copy)]
pub struct AttentionKeys {
    enc: Var,
    proj: Var,
}

impl Attention {
    /// Register parameters. `enc_dim`/`dec_dim` are the encoder/decoder
    /// state widths, `attn_dim` the scoring space width.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        enc_dim: usize,
        dec_dim: usize,
        attn_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Attention {
            w_enc: store.add(format!("{name}.w_enc"), init::xavier_uniform(enc_dim, attn_dim, rng)),
            w_dec: store.add(format!("{name}.w_dec"), init::xavier_uniform(dec_dim, attn_dim, rng)),
            v: store.add(format!("{name}.v"), init::xavier_uniform(attn_dim, 1, rng)),
            attn_dim,
        }
    }

    /// Scoring-space width.
    pub fn attn_dim(&self) -> usize {
        self.attn_dim
    }

    /// Project the encoder outputs (`T × enc_dim`) once.
    pub fn precompute(&self, ctx: &mut FwdCtx<'_>, enc: Var) -> AttentionKeys {
        let w = ctx.p(self.w_enc);
        let proj = ctx.tape.matmul(enc, w);
        AttentionKeys { enc, proj }
    }

    /// One attention read with decoder state `dec` (`1 × dec_dim`).
    /// Returns the context vector (`1 × enc_dim`).
    ///
    /// The scoring chain runs through the fused
    /// [`mars_autograd::Tape::attn_scores`] op: one tape node computes
    /// `(tanh(proj ⊕ dproj) · v)ᵀ` in a single pass instead of four
    /// composed ops with three `T × attn` intermediates — this is the
    /// decoder hot path, read once per placed op.
    pub fn read(&self, ctx: &mut FwdCtx<'_>, keys: AttentionKeys, dec: Var) -> Var {
        let _span = mars_telemetry::span("nn.attention.read");
        let wd = ctx.p(self.w_dec);
        let dproj = ctx.tape.matmul(dec, wd); // 1 × attn
        let v = ctx.p(self.v);
        let scores_row = ctx.tape.attn_scores(keys.proj, dproj, v); // 1 × T
        let weights = ctx.tape.softmax_rows(scores_row); // 1 × T
        ctx.tape.matmul(weights, keys.enc) // 1 × enc_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;
    use mars_tensor::Matrix;

    #[test]
    fn context_is_convex_combination() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let attn = Attention::new(&mut store, "a", 3, 2, 4, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        // Encoder rows are one-hot — context components must be softmax
        // weights, hence in [0, 1] and summing to 1.
        let enc = ctx.tape.constant(Matrix::eye(3));
        let keys = attn.precompute(&mut ctx, enc);
        let dec = ctx.tape.constant(Matrix::row_vector(&[0.5, -0.5]));
        let c = attn.read(&mut ctx, keys, dec);
        let v = ctx.tape.value(c);
        assert_eq!(v.shape(), (1, 3));
        let sum: f32 = v.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(v.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn different_queries_give_different_contexts() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let attn = Attention::new(&mut store, "a", 4, 4, 8, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let enc = ctx.tape.constant(init::uniform(6, 4, 1.0, &mut rng));
        let keys = attn.precompute(&mut ctx, enc);
        let d1 = ctx.tape.constant(init::uniform(1, 4, 1.0, &mut rng));
        let d2 = ctx.tape.constant(init::uniform(1, 4, 1.0, &mut rng));
        let c1 = attn.read(&mut ctx, keys, d1);
        let c2 = attn.read(&mut ctx, keys, d2);
        assert!(ctx.tape.value(c1).max_abs_diff(ctx.tape.value(c2)) > 1e-6);
    }

    #[test]
    fn gradients_reach_all_three_params() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let attn = Attention::new(&mut store, "a", 3, 3, 5, &mut rng);
        let mut ctx = FwdCtx::new(&store);
        let enc = ctx.tape.constant(init::uniform(4, 3, 1.0, &mut rng));
        let keys = attn.precompute(&mut ctx, enc);
        let dec = ctx.tape.constant(init::uniform(1, 3, 1.0, &mut rng));
        let c = attn.read(&mut ctx, keys, dec);
        let loss = ctx.tape.mean_all(c);
        let grads = ctx.into_grads(loss, 1.0);
        crate::ctx::apply_grads(&mut store, grads);
        assert!(store.grad(attn.w_enc).frobenius_norm() > 0.0);
        assert!(store.grad(attn.w_dec).frobenius_norm() > 0.0);
        assert!(store.grad(attn.v).frobenius_norm() > 0.0);
    }
}
