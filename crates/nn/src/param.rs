//! Central registry of trainable parameters.
//!
//! Layers never own their weights directly — they hold [`ParamId`]
//! handles into a [`ParamStore`]. This keeps all optimizer state in one
//! place, makes joint training of encoder + placer (the paper's
//! "end-to-end" training) a single `Adam::step`, and makes
//! save/restore of the pre-trained encoder trivial (Mars restores the
//! DGI checkpoint with the lowest loss before PPO starts).

use mars_tensor::Matrix;

/// Handle to one parameter tensor inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

pub(crate) struct ParamData {
    pub name: String,
    pub value: Matrix,
    /// Accumulated gradient (zeroed by the optimizer after each step).
    pub grad: Matrix,
    /// Adam first-moment estimate.
    pub m: Matrix,
    /// Adam second-moment estimate.
    pub v: Matrix,
}

/// Owns every trainable tensor of a model (or of several models trained
/// jointly), plus gradient and Adam moment buffers.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<ParamData>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new parameter initialized to `value`.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(ParamData {
            name: name.into(),
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable value (used by tests and checkpoint restore).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Add `g` into the accumulated gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Zero every accumulated gradient.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill_zero();
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_global_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                let n = p.grad.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scale every gradient so the global norm does not exceed `max_norm`.
    pub fn clip_grad_global_norm(&mut self, max_norm: f32) {
        let norm = self.grad_global_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &mut self.params {
                p.grad.map_inplace(|x| x * scale);
            }
        }
    }

    /// Iterate over ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Snapshot all parameter values (a checkpoint).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restore a snapshot taken with [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// If the snapshot does not match the store layout.
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.params.len(), "snapshot length mismatch");
        for (p, s) in self.params.iter_mut().zip(snapshot) {
            assert_eq!(p.value.shape(), s.shape(), "snapshot shape mismatch for {}", p.name);
            p.value = s.clone();
        }
    }

    /// Reset Adam moments (used when switching from pre-training to PPO
    /// with a fresh optimizer).
    pub fn reset_optimizer_state(&mut self) {
        for p in &mut self.params {
            p.m.fill_zero();
            p.v.fill_zero();
        }
    }

    pub(crate) fn data_mut(&mut self, idx: usize) -> &mut ParamData {
        &mut self.params[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::full(2, 3, 1.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_scalars(), 6);
        assert_eq!(s.name(w), "w");
        assert_eq!(s.value(w).shape(), (2, 3));
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::zeros(1, 2));
        s.accumulate_grad(w, &Matrix::row_vector(&[1.0, 2.0]));
        s.accumulate_grad(w, &Matrix::row_vector(&[1.0, 2.0]));
        assert_eq!(s.grad(w).as_slice(), &[2.0, 4.0]);
        s.zero_grads();
        assert_eq!(s.grad(w).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_global_norm() {
        let mut s = ParamStore::new();
        let a = s.add("a", Matrix::zeros(1, 1));
        let b = s.add("b", Matrix::zeros(1, 1));
        s.accumulate_grad(a, &Matrix::from_vec(1, 1, vec![3.0]));
        s.accumulate_grad(b, &Matrix::from_vec(1, 1, vec![4.0]));
        assert!((s.grad_global_norm() - 5.0).abs() < 1e-6);
        s.clip_grad_global_norm(1.0);
        assert!((s.grad_global_norm() - 1.0).abs() < 1e-5);
        // Direction preserved.
        assert!((s.grad(a).get(0, 0) / s.grad(b).get(0, 0) - 0.75).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let mut s = ParamStore::new();
        let a = s.add("a", Matrix::zeros(1, 1));
        s.accumulate_grad(a, &Matrix::from_vec(1, 1, vec![0.5]));
        s.clip_grad_global_norm(1.0);
        assert_eq!(s.grad(a).get(0, 0), 0.5);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = ParamStore::new();
        let w = s.add("w", Matrix::full(2, 2, 1.0));
        let snap = s.snapshot();
        s.value_mut(w).map_inplace(|x| x + 5.0);
        assert_eq!(s.value(w).get(0, 0), 6.0);
        s.restore(&snap);
        assert_eq!(s.value(w).get(0, 0), 1.0);
    }
}
