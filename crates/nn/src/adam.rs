//! Adam optimizer with global-norm gradient clipping.
//!
//! The paper trains both the DGI pre-training and the joint PPO phase
//! with Adam (learning rate 3e-4) and clips gradients to a global norm
//! of 1.0.

use crate::param::ParamStore;

/// Adam optimizer (Kingma & Ba, 2015).
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// Adam with the usual β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Clip gradients to `max_grad_norm` (global L2), apply one Adam
    /// update to every parameter in `store`, then zero the gradients.
    pub fn step(&mut self, store: &mut ParamStore, max_grad_norm: f32) {
        store.clip_grad_global_norm(max_grad_norm);
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for id in store.ids().collect::<Vec<_>>() {
            let data = store.data_mut(id.0);
            let n = data.value.len();
            let g = data.grad.as_slice().to_vec();
            let m = data.m.as_mut_slice();
            let v = data.v.as_mut_slice();
            let w = data.value.as_mut_slice();
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                w[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_tensor::Matrix;

    #[test]
    fn minimizes_quadratic() {
        // Minimize f(w) = (w − 3)² by feeding the analytic gradient.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let g = 2.0 * (store.value(w).get(0, 0) - 3.0);
            store.accumulate_grad(w, &Matrix::from_vec(1, 1, vec![g]));
            adam.step(&mut store, 10.0);
        }
        assert!((store.value(w).get(0, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn grads_zeroed_after_step() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        store.accumulate_grad(w, &Matrix::from_vec(1, 1, vec![1.0]));
        let mut adam = Adam::new(0.01);
        adam.step(&mut store, 1.0);
        assert_eq!(store.grad(w).get(0, 0), 0.0);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, the very first Adam step moves by ≈ lr.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        store.accumulate_grad(w, &Matrix::from_vec(1, 1, vec![0.5]));
        let mut adam = Adam::new(0.1);
        adam.step(&mut store, 10.0);
        assert!((store.value(w).get(0, 0) + 0.1).abs() < 1e-3);
    }
}
