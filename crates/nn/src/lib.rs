#![warn(missing_docs)]
//! Neural-network layers and optimizers for the Mars agent.
//!
//! Everything the paper's models need, built on `mars-autograd`:
//!
//! * [`param`] — a central [`param::ParamStore`] owning all trainable
//!   tensors plus their gradient and Adam state.
//! * [`ctx::FwdCtx`] — binds store parameters onto a fresh tape for one
//!   forward pass and harvests their gradients after `backward`.
//! * [`linear::Linear`], [`gcn::GcnLayer`], [`lstm::LstmCell`] /
//!   [`lstm::Lstm`] / [`lstm::BiLstm`], [`attention::Attention`] — the
//!   building blocks of the encoder and the placers.
//! * [`adam::Adam`] — Adam with global-norm gradient clipping, the
//!   optimizer the paper trains with (lr 3e-4, clip 1.0).

pub mod adam;
pub mod attention;
pub mod checkpoint;
pub mod ctx;
pub mod gcn;
pub mod linear;
pub mod lstm;
pub mod param;
pub mod util;

pub use adam::Adam;
pub use attention::Attention;
pub use ctx::{apply_grads, FwdCtx};
pub use gcn::GcnLayer;
pub use linear::Linear;
pub use lstm::{BiLstm, Lstm, LstmCell, LstmState};
pub use param::{ParamId, ParamStore};
