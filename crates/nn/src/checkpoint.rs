//! Parameter checkpointing.
//!
//! A minimal, versioned binary format (`MARS` magic + format version)
//! storing every parameter's name, shape and f32 data. Used to persist
//! the DGI-pre-trained encoder (§4.2 "save the parameters corresponding
//! to the lowest loss") and trained agents for the generalization
//! workflow.
//!
//! Format, little-endian:
//! ```text
//! b"MARS" u32(version=1) u32(num_params)
//! repeat: u32(name_len) name u32(rows) u32(cols) f32 × rows·cols
//! ```

use crate::param::ParamStore;
use mars_tensor::Matrix;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MARS";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Serialize every parameter of `store` to `w`.
pub fn save(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, store.len() as u32)?;
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        write_u32(w, name.len() as u32)?;
        w.write_all(name)?;
        let m = store.value(id);
        write_u32(w, m.rows() as u32)?;
        write_u32(w, m.cols() as u32)?;
        for &x in m.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Save to a file path.
pub fn save_file(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save(store, &mut f)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Load parameter values into an existing store.
///
/// Parameters are matched **by name**; shapes must agree. Returns the
/// number of parameters restored. Parameters in the checkpoint that are
/// absent from the store are ignored (this allows loading an
/// encoder-only checkpoint into a full agent); store parameters missing
/// from the checkpoint keep their current values.
pub fn load(store: &mut ParamStore, r: &mut impl Read) -> io::Result<usize> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a MARS checkpoint"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    let count = read_u32(r)? as usize;
    let by_name: std::collections::HashMap<String, crate::param::ParamId> =
        store.ids().map(|id| (store.name(id).to_string(), id)).collect();

    let mut restored = 0;
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        let mut name_buf = vec![0u8; name_len];
        r.read_exact(&mut name_buf)?;
        let name = String::from_utf8(name_buf).map_err(|_| bad("invalid UTF-8 parameter name"))?;
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for x in &mut data {
            r.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        if let Some(&id) = by_name.get(&name) {
            let m = Matrix::from_vec(rows, cols, data);
            if store.value(id).shape() != m.shape() {
                return Err(bad(format!(
                    "shape mismatch for '{name}': checkpoint {:?}, store {:?}",
                    m.shape(),
                    store.value(id).shape()
                )));
            }
            *store.value_mut(id) = m;
            restored += 1;
        }
    }
    Ok(restored)
}

/// Load from a file path.
pub fn load_file(store: &mut ParamStore, path: impl AsRef<Path>) -> io::Result<usize> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load(store, &mut f)
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Order-sensitive FNV-1a identity of a store's weights: every
/// parameter's name, shape, and exact f32 bit pattern. The serving
/// layer stamps persisted placement-cache entries with this so results
/// computed under one set of weights are never replayed under another
/// (entries with a stale fingerprint are skipped at load).
pub fn fingerprint(store: &ParamStore) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for id in store.ids() {
        h = fnv1a(h, store.name(id).as_bytes());
        let m = store.value(id);
        h = fnv1a(h, &(m.rows() as u64).to_le_bytes());
        h = fnv1a(h, &(m.cols() as u64).to_le_bytes());
        for &x in m.as_slice() {
            h = fnv1a(h, &x.to_bits().to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_rng::rngs::StdRng;
    use mars_rng::SeedableRng;
    use mars_tensor::init;

    fn store_with(names: &[&str], seed: u64) -> ParamStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = ParamStore::new();
        for n in names {
            s.add(*n, init::uniform(3, 4, 1.0, &mut rng));
        }
        s
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let src = store_with(&["a.w", "a.b", "z"], 1);
        let mut buf = Vec::new();
        save(&src, &mut buf).expect("save");
        let mut dst = store_with(&["a.w", "a.b", "z"], 2);
        let restored = load(&mut dst, &mut buf.as_slice()).expect("load");
        assert_eq!(restored, 3);
        for (i, j) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(i), dst.value(j));
        }
    }

    #[test]
    fn partial_load_by_name() {
        let src = store_with(&["enc.w"], 3);
        let mut buf = Vec::new();
        save(&src, &mut buf).expect("save");
        // Destination has extra parameters — only enc.w is restored.
        let mut dst = store_with(&["enc.w", "placer.w"], 4);
        let before_placer = dst.value(dst.ids().nth(1).expect("id")).clone();
        let restored = load(&mut dst, &mut buf.as_slice()).expect("load");
        assert_eq!(restored, 1);
        assert_eq!(
            dst.value(dst.ids().next().expect("id")),
            src.value(src.ids().next().expect("id"))
        );
        assert_eq!(dst.value(dst.ids().nth(1).expect("id")), &before_placer);
    }

    #[test]
    fn rejects_garbage_and_shape_mismatch() {
        let mut s = store_with(&["w"], 5);
        assert!(load(&mut s, &mut &b"nope"[..]).is_err());

        // Same name, different shape.
        let src = store_with(&["w"], 6);
        let mut buf = Vec::new();
        save(&src, &mut buf).expect("save");
        let mut dst = ParamStore::new();
        dst.add("w", Matrix::zeros(2, 2));
        assert!(load(&mut dst, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn fingerprint_tracks_values_names_and_shapes() {
        let a = store_with(&["a.w", "a.b"], 11);
        let same = store_with(&["a.w", "a.b"], 11);
        assert_eq!(fingerprint(&a), fingerprint(&same));

        let other_values = store_with(&["a.w", "a.b"], 12);
        assert_ne!(fingerprint(&a), fingerprint(&other_values));
        let other_names = store_with(&["a.w", "a.c"], 11);
        assert_ne!(fingerprint(&a), fingerprint(&other_names));

        // A single flipped bit in one value changes the fingerprint.
        let mut flipped = store_with(&["a.w", "a.b"], 11);
        let id = flipped.ids().next().expect("id");
        let v = flipped.value(id).get(0, 0);
        *flipped.value_mut(id) = {
            let mut m = flipped.value(id).clone();
            m.set(0, 0, f32::from_bits(v.to_bits() ^ 1));
            m
        };
        assert_ne!(fingerprint(&a), fingerprint(&flipped));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mars-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("ckpt.mars");
        let src = store_with(&["x", "y"], 7);
        save_file(&src, &path).expect("save_file");
        let mut dst = store_with(&["x", "y"], 8);
        assert_eq!(load_file(&mut dst, &path).expect("load_file"), 2);
        assert_eq!(
            src.value(src.ids().next().expect("id")),
            dst.value(dst.ids().next().expect("id"))
        );
        let _ = std::fs::remove_file(path);
    }
}
