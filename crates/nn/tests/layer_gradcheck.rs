//! Finite-difference gradient checks of whole layers, treating layer
//! parameters as checked inputs (complements the per-op checks in
//! `mars-autograd`).

use mars_autograd::check::check_gradients;
use mars_autograd::{Tape, Var};
use mars_nn::util::slice_cols;
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use mars_tensor::ops::CsrMatrix;
use mars_tensor::{init, Matrix};
use std::sync::Arc;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Manual linear layer y = tanh(x·W + b), checked against FD.
#[test]
fn linear_layer_parameters() {
    let mut r = rng(1);
    let x = init::uniform(3, 4, 0.8, &mut r);
    let w = init::uniform(4, 2, 0.8, &mut r);
    let b = init::uniform(1, 2, 0.3, &mut r);
    check_gradients(&[x, w, b], 2e-2, 1e-2, |t, v| {
        let xw = t.matmul(v[0], v[1]);
        let z = t.add_bias(xw, v[2]);
        let y = t.tanh(z);
        t.mean_all(y)
    });
}

/// A full LSTM cell step, gradients w.r.t. fused weights and states.
#[test]
fn lstm_cell_parameters() {
    let mut r = rng(2);
    let hd = 3usize;
    let x = init::uniform(1, 4, 0.6, &mut r);
    let w_ih = init::uniform(4, 4 * hd, 0.5, &mut r);
    let w_hh = init::uniform(hd, 4 * hd, 0.5, &mut r);
    let bias = init::uniform(1, 4 * hd, 0.3, &mut r);
    let h0 = init::uniform(1, hd, 0.5, &mut r);
    let c0 = init::uniform(1, hd, 0.5, &mut r);

    let step = move |t: &mut Tape, v: &[Var]| -> Var {
        let (x, w_ih, w_hh, bias, h0, c0) = (v[0], v[1], v[2], v[3], v[4], v[5]);
        let xi = t.matmul(x, w_ih);
        let hh = t.matmul(h0, w_hh);
        let z0 = t.add(xi, hh);
        let z = t.add_bias(z0, bias);
        let i_pre = slice_cols(t, z, 0, hd);
        let f_pre = slice_cols(t, z, hd, 2 * hd);
        let g_pre = slice_cols(t, z, 2 * hd, 3 * hd);
        let o_pre = slice_cols(t, z, 3 * hd, 4 * hd);
        let i = t.sigmoid(i_pre);
        let f = t.sigmoid(f_pre);
        let g = t.tanh(g_pre);
        let o = t.sigmoid(o_pre);
        let fc = t.mul(f, c0);
        let ig = t.mul(i, g);
        let c = t.add(fc, ig);
        let ct = t.tanh(c);
        let h = t.mul(o, ct);
        t.mean_all(h)
    };
    check_gradients(&[x, w_ih, w_hh, bias, h0, c0], 2e-2, 1e-2, step);
}

/// GCN layer with PReLU over a small normalized adjacency.
#[test]
fn gcn_layer_parameters() {
    let mut r = rng(3);
    let adj = Arc::new(CsrMatrix::from_triplets(
        4,
        4,
        &[
            (0, 0, 0.5),
            (0, 1, 0.5),
            (1, 0, 0.3),
            (1, 1, 0.4),
            (1, 2, 0.3),
            (2, 1, 0.5),
            (2, 2, 0.5),
            (3, 3, 1.0),
        ],
    ));
    let x = init::uniform(4, 3, 0.8, &mut r);
    let w = init::uniform(3, 2, 0.8, &mut r);
    let b = init::uniform(1, 2, 0.3, &mut r);
    let alpha = Matrix::from_vec(1, 1, vec![0.25]);
    check_gradients(&[x, w, b, alpha], 2e-2, 1e-2, move |t, v| {
        let xw = t.matmul(v[0], v[1]);
        let agg = t.spmm(adj.clone(), xw);
        let z = t.add_bias(agg, v[2]);
        let h = t.prelu(z, v[3]);
        t.mean_all(h)
    });
}

/// Bahdanau attention read, gradients w.r.t. all three projections.
#[test]
fn attention_parameters() {
    let mut r = rng(4);
    let enc = init::uniform(5, 3, 0.8, &mut r);
    let w_enc = init::uniform(3, 4, 0.6, &mut r);
    let w_dec = init::uniform(2, 4, 0.6, &mut r);
    let vvec = init::uniform(4, 1, 0.6, &mut r);
    let dec = init::uniform(1, 2, 0.6, &mut r);
    check_gradients(&[enc, w_enc, w_dec, vvec, dec], 2e-2, 1e-2, |t, v| {
        let proj = t.matmul(v[0], v[1]);
        let dproj = t.matmul(v[4], v[2]);
        let summed = t.add_bias(proj, dproj);
        let act = t.tanh(summed);
        let scores = t.matmul(act, v[3]);
        let row = t.transpose(scores);
        let weights = t.softmax_rows(row);
        let context = t.matmul(weights, v[0]);
        let y = t.tanh(context);
        t.mean_all(y)
    });
}

/// A two-segment recurrence: state carried across segments must pass
/// gradient back to the first segment's inputs.
#[test]
fn cross_segment_gradient_flow() {
    let mut r = rng(5);
    let hd = 2usize;
    let xs = init::uniform(4, 2, 0.6, &mut r); // 4 steps, 2 features
    let w_ih = init::uniform(2, 4 * hd, 0.5, &mut r);
    let w_hh = init::uniform(hd, 4 * hd, 0.5, &mut r);

    let checks = check_gradients(&[xs, w_ih, w_hh], 2e-2, 1e-2, move |t, v| {
        let mut h = t.constant(Matrix::zeros(1, hd));
        let mut c = t.constant(Matrix::zeros(1, hd));
        for i in 0..4 {
            let x = t.slice_rows(v[0], i, i + 1);
            let xi = t.matmul(x, v[1]);
            let hh = t.matmul(h, v[2]);
            let z = t.add(xi, hh);
            let i_pre = slice_cols(t, z, 0, hd);
            let f_pre = slice_cols(t, z, hd, 2 * hd);
            let g_pre = slice_cols(t, z, 2 * hd, 3 * hd);
            let o_pre = slice_cols(t, z, 3 * hd, 4 * hd);
            let ig = t.sigmoid(i_pre);
            let fg = t.sigmoid(f_pre);
            let gg = t.tanh(g_pre);
            let og = t.sigmoid(o_pre);
            let fc = t.mul(fg, c);
            let igg = t.mul(ig, gg);
            c = t.add(fc, igg);
            let ct = t.tanh(c);
            h = t.mul(og, ct);
        }
        // Loss only on the FINAL hidden state: early steps receive
        // gradient exclusively through the recurrence.
        t.mean_all(h)
    });
    // The first input row's gradient must be nonzero (long-range credit).
    let first_row_grad: f32 = checks[0].analytic.row(0).iter().map(|g| g.abs()).sum();
    assert!(first_row_grad > 1e-6, "no gradient reached the first timestep");
}
