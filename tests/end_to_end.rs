//! End-to-end integration: full Mars pipeline (graph → features → DGI
//! pre-training → PPO against the simulator) on every benchmark.

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{Cluster, Environment, Placement, SimEnv};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn tiny_cfg() -> MarsConfig {
    let mut c = MarsConfig::small();
    c.encoder_hidden = 16;
    c.placer_hidden = 16;
    c.attn_dim = 8;
    c.segment_size = 24;
    c.dgi_iters = 40;
    c
}

fn train_mars(w: Workload, samples: usize, seed: u64) -> (TrainingLog, SimEnv) {
    let graph = w.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent =
        Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, cluster.num_devices(), &mut rng);
    agent.pretrain(&input, &mut rng);
    let mut env = SimEnv::new(graph, cluster, seed);
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, samples, &mut rng, &mut log);
    (log, env)
}

#[test]
fn mars_beats_mean_random_on_inception() {
    let (log, mut env) = train_mars(Workload::InceptionV3, 160, 99);
    let best = log.best_reading_s.expect("valid placement found");

    // Mean of 20 random placements for comparison.
    let mut rng = StdRng::seed_from_u64(123);
    let graph = Workload::InceptionV3.build(Profile::Reduced);
    let cluster = Cluster::p100_quad();
    let mut total = 0.0;
    let mut count = 0;
    for _ in 0..20 {
        let p = Placement::random(&graph, &cluster, &mut rng);
        if let mars::sim::EvalOutcome::Valid { per_step_s } = env.evaluate(&p) {
            total += per_step_s;
            count += 1;
        }
    }
    assert!(count > 0, "random placements should mostly be valid for inception");
    let random_mean = total / count as f64;
    assert!(
        best < random_mean * 0.7,
        "Mars best {best} should clearly beat random mean {random_mean}"
    );
}

#[test]
fn mars_finds_valid_placement_for_every_benchmark() {
    for (w, seed) in [(Workload::InceptionV3, 1u64), (Workload::Gnmt4, 2), (Workload::BertBase, 3)]
    {
        let (log, _) = train_mars(w, 120, seed);
        let best = log.best_reading_s.unwrap_or_else(|| panic!("{}: no valid placement", w.name()));
        assert!(best.is_finite() && best > 0.0);
        let placement = log.best_placement.expect("placement recorded");
        // The recorded placement must verify as valid in a fresh env.
        let graph = w.build(Profile::Reduced);
        let env = SimEnv::new(graph, Cluster::p100_quad(), 77);
        let truth = env.true_step_time(&placement);
        assert!(truth.is_ok(), "{}: recorded best placement is invalid", w.name());
    }
}

#[test]
fn training_is_deterministic_for_fixed_seed() {
    let (a, _) = train_mars(Workload::InceptionV3, 80, 5);
    let (b, _) = train_mars(Workload::InceptionV3, 80, 5);
    assert_eq!(a.best_reading_s, b.best_reading_s);
    assert_eq!(a.best_placement, b.best_placement);
    assert_eq!(a.total_samples, b.total_samples);
}

#[test]
fn different_seeds_explore_differently() {
    let (a, _) = train_mars(Workload::InceptionV3, 80, 5);
    let (b, _) = train_mars(Workload::InceptionV3, 80, 6);
    // Placements should differ even if readings are close.
    assert_ne!(a.best_placement, b.best_placement);
}

#[test]
fn gnmt_best_placement_uses_multiple_devices() {
    // GNMT cannot fit one GPU, so any valid placement must span
    // several devices — the agent must have learned to split.
    let (log, _) = train_mars(Workload::Gnmt4, 120, 8);
    let placement = log.best_placement.expect("valid placement");
    assert!(placement.devices_used().len() >= 2);
}
