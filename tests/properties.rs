//! Property-based tests over the simulator and graph substrates,
//! running on the in-repo seeded harness (`mars_rng::props!`).

use mars::graph::{CompGraph, Edge, OpKind, OpNode, TensorShape};
use mars::sim::{check_memory, simulate, Cluster, DeviceSpec, LinkSpec, Placement};
use mars_rng::rngs::StdRng;
use mars_rng::{props, Rng};

/// Build a random DAG: 3–17 nodes, edges only forward in index order.
fn arb_dag(rng: &mut StdRng) -> CompGraph {
    let n = rng.gen_range(3..18usize);
    let mut g = CompGraph::new("prop");
    for i in 0..n {
        g.add_node(OpNode {
            name: format!("op{i}"),
            kind: OpKind::MatMul,
            output_shape: TensorShape(vec![64, 64]),
            flops: rng.gen_range(0.0..5e9f64),
            param_bytes: 1024,
            activation_bytes: 4096,
            gpu_compatible: true,
        });
    }
    for _ in 0..rng.gen_range(1..40usize) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let (lo, hi) = (a.min(b), a.max(b));
        if lo != hi {
            g.add_edge(lo, hi, rng.gen_range(1u64..(1 << 22)));
        }
    }
    g
}

fn arb_placement(rng: &mut StdRng, n: usize, devices: usize) -> Placement {
    Placement((0..n).map(|_| rng.gen_range(0..devices)).collect())
}

fn cluster_with_bandwidth(bw: f64) -> Cluster {
    Cluster::new(
        vec![DeviceSpec::xeon(), DeviceSpec::p100(0), DeviceSpec::p100(1)],
        LinkSpec { bandwidth_bps: bw, latency_s: 20e-6 },
    )
}

props! {
    fn random_dags_are_valid(rng, 64) {
        let g = arb_dag(rng);
        assert!(g.validate().is_ok());
        assert!(g.topo_order().is_some());
    }

    fn makespan_is_finite_and_bounded(rng, 64) {
        let g = arb_dag(rng);
        let p = arb_placement(rng, g.num_nodes(), 3);
        let c = cluster_with_bandwidth(6e9);
        let rep = simulate(&g, &p, &c);
        assert!(rep.makespan_s.is_finite());
        assert!(rep.makespan_s >= 0.0);
        // Upper bound: everything serial on the slowest device plus all
        // communication time.
        let serial: f64 = g.nodes().iter()
            .map(|n| mars::sim::cost::op_time(n, c.device(0)))
            .sum();
        assert!(rep.makespan_s <= serial + rep.comm_s + 1e-9);
        // Lower bound: busiest device's compute.
        let busiest = rep.device_busy_s.iter().copied().fold(0.0, f64::max);
        assert!(rep.makespan_s + 1e-12 >= busiest);
    }

    fn colocated_placement_never_communicates(rng, 64) {
        let g = arb_dag(rng);
        let c = cluster_with_bandwidth(6e9);
        for d in 0..c.num_devices() {
            let rep = simulate(&g, &Placement::all_on(&g, d), &c);
            assert_eq!(rep.num_transfers, 0);
            assert_eq!(rep.comm_s, 0.0);
        }
    }

    fn more_bandwidth_helps_within_anomaly_bound(rng, 64) {
        // Strict makespan monotonicity in bandwidth does NOT hold for
        // greedy list scheduling (Graham's scheduling anomalies: faster
        // transfers can reorder ready queues into worse schedules — see
        // `bandwidth_anomaly_regression` below for a concrete instance).
        // What is guaranteed: total link occupancy strictly shrinks, and
        // the anomaly is bounded (classically ≤ 2×; we assert a tight
        // 1.5×).
        let g = arb_dag(rng);
        let p = arb_placement(rng, g.num_nodes(), 3);
        let slow_rep = simulate(&g, &p, &cluster_with_bandwidth(1e9));
        let fast_rep = simulate(&g, &p, &cluster_with_bandwidth(64e9));
        assert!(fast_rep.comm_s <= slow_rep.comm_s + 1e-9,
            "comm time must shrink with bandwidth: {} > {}", fast_rep.comm_s, slow_rep.comm_s);
        assert!(fast_rep.makespan_s <= 1.5 * slow_rep.makespan_s + 1e-9,
            "anomaly beyond bound: fast {} vs slow {}", fast_rep.makespan_s, slow_rep.makespan_s);
    }

    fn memory_check_matches_manual_sum(rng, 64) {
        let g = arb_dag(rng);
        let p = arb_placement(rng, g.num_nodes(), 3);
        let c = cluster_with_bandwidth(6e9);
        let rep = check_memory(&g, &p, &c).expect("tiny graphs always fit");
        let manual: u64 = g.nodes().iter().map(|n| n.param_bytes + n.activation_bytes).sum();
        assert_eq!(rep.used_bytes.iter().sum::<u64>(), manual);
    }

    fn cut_bytes_consistent_with_cut_edges(rng, 64) {
        let g = arb_dag(rng);
        let p = arb_placement(rng, g.num_nodes(), 3);
        if p.cut_edges(&g) == 0 {
            assert_eq!(p.cut_bytes(&g), 0);
        }
        if p.cut_bytes(&g) > 0 {
            assert!(p.cut_edges(&g) > 0);
        }
        assert!(p.cut_edges(&g) <= g.num_edges());
    }

    fn faster_devices_never_hurt(rng, 64) {
        let g = arb_dag(rng);
        let slow_dev = Cluster::new(
            vec![DeviceSpec { peak_gflops: 100.0, ..DeviceSpec::p100(0) }],
            LinkSpec::pcie(),
        );
        let fast_dev = Cluster::new(
            vec![DeviceSpec { peak_gflops: 1000.0, ..DeviceSpec::p100(0) }],
            LinkSpec::pcie(),
        );
        let p = Placement::all_on(&g, 0);
        let t_slow = simulate(&g, &p, &slow_dev).makespan_s;
        let t_fast = simulate(&g, &p, &fast_dev).makespan_s;
        assert!(t_fast <= t_slow + 1e-12);
    }
}

/// The shrunk counterexample proptest once found for strict bandwidth
/// monotonicity (formerly pinned in `properties.proptest-regressions`).
/// It demonstrates a genuine Graham scheduling anomaly, so the property
/// asserts the weak form: communication time shrinks and the makespan
/// anomaly stays within the 1.5× bound.
#[test]
fn bandwidth_anomaly_regression() {
    const FLOPS: [f64; 10] = [
        1280179767.826233,
        2019248241.521412,
        3765653384.268404,
        3687364098.596029,
        4101043257.666207,
        477348354.67949766,
        17847841.0398836,
        1661798035.636499,
        2303426131.6145144,
        2317685912.8607316,
    ];
    const EDGES: [(usize, usize, u64); 26] = [
        (2, 9, 2074541),
        (6, 9, 2577766),
        (4, 5, 3006835),
        (4, 6, 2377545),
        (2, 9, 2965088),
        (0, 7, 3805810),
        (3, 9, 1172711),
        (1, 3, 452972),
        (4, 9, 409488),
        (2, 7, 2594869),
        (1, 8, 241330),
        (0, 7, 1711511),
        (4, 7, 2290233),
        (7, 8, 917315),
        (3, 5, 569338),
        (6, 9, 2340890),
        (4, 8, 860252),
        (5, 6, 2047092),
        (6, 9, 1981978),
        (6, 8, 894505),
        (3, 8, 3373012),
        (2, 6, 2324877),
        (0, 4, 1478761),
        (5, 7, 907133),
        (0, 6, 3101167),
        (0, 2, 3421006),
    ];
    let mut g = CompGraph::new("prop");
    for (i, &flops) in FLOPS.iter().enumerate() {
        g.add_node(OpNode {
            name: format!("op{i}"),
            kind: OpKind::MatMul,
            output_shape: TensorShape(vec![64, 64]),
            flops,
            param_bytes: 1024,
            activation_bytes: 4096,
            gpu_compatible: true,
        });
    }
    for &(src, dst, bytes) in &EDGES {
        g.add_edge(src, dst, bytes);
    }
    assert_eq!(g.edges().len(), 26);
    assert_eq!(
        g.edges()[0],
        Edge { src: 2, dst: 9, bytes: 2074541 },
        "edge order must match the recorded counterexample"
    );
    let p = Placement(vec![1, 2, 2, 2, 1, 0, 0, 0, 0, 0]);

    let slow_rep = simulate(&g, &p, &cluster_with_bandwidth(1e9));
    let fast_rep = simulate(&g, &p, &cluster_with_bandwidth(64e9));
    assert!(
        fast_rep.comm_s <= slow_rep.comm_s + 1e-9,
        "comm time must shrink with bandwidth: {} > {}",
        fast_rep.comm_s,
        slow_rep.comm_s
    );
    assert!(
        fast_rep.makespan_s <= 1.5 * slow_rep.makespan_s + 1e-9,
        "anomaly beyond bound: fast {} vs slow {}",
        fast_rep.makespan_s,
        slow_rep.makespan_s
    );
}
