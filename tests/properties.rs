//! Property-based tests over the simulator and graph substrates.

use mars::graph::{CompGraph, OpKind, OpNode, TensorShape};
use mars::sim::{check_memory, simulate, Cluster, DeviceSpec, LinkSpec, Placement};
use proptest::prelude::*;

/// Build a random DAG: `n` nodes, edges only forward in index order.
fn arb_dag() -> impl Strategy<Value = CompGraph> {
    (3usize..18).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0usize..n, 0usize..n, 1u64..(1 << 22)), 1..40);
        let flops = proptest::collection::vec(0.0f64..5e9, n);
        (Just(n), edges, flops).prop_map(|(n, edges, flops)| {
            let mut g = CompGraph::new("prop");
            for (i, f) in flops.iter().enumerate() {
                g.add_node(OpNode {
                    name: format!("op{i}"),
                    kind: OpKind::MatMul,
                    output_shape: TensorShape(vec![64, 64]),
                    flops: *f,
                    param_bytes: 1024,
                    activation_bytes: 4096,
                    gpu_compatible: true,
                });
            }
            for (a, b, bytes) in edges {
                let (lo, hi) = (a.min(b), a.max(b));
                if lo != hi {
                    g.add_edge(lo, hi, bytes);
                }
            }
            g
        })
    })
}

fn arb_placement(n: usize, devices: usize) -> impl Strategy<Value = Placement> {
    proptest::collection::vec(0usize..devices, n).prop_map(Placement)
}

fn cluster_with_bandwidth(bw: f64) -> Cluster {
    Cluster::new(
        vec![DeviceSpec::xeon(), DeviceSpec::p100(0), DeviceSpec::p100(1)],
        LinkSpec { bandwidth_bps: bw, latency_s: 20e-6 },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dags_are_valid(g in arb_dag()) {
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.topo_order().is_some());
    }

    #[test]
    fn makespan_is_finite_and_bounded((g, seed) in arb_dag().prop_flat_map(|g| {
        let n = g.num_nodes();
        (Just(g), arb_placement(n, 3))
    })) {
        let (g, p) = (g, seed);
        let c = cluster_with_bandwidth(6e9);
        let rep = simulate(&g, &p, &c);
        prop_assert!(rep.makespan_s.is_finite());
        prop_assert!(rep.makespan_s >= 0.0);
        // Upper bound: everything serial on the slowest device plus all
        // communication time.
        let serial: f64 = g.nodes().iter()
            .map(|n| mars::sim::cost::op_time(n, c.device(0)))
            .sum();
        prop_assert!(rep.makespan_s <= serial + rep.comm_s + 1e-9);
        // Lower bound: busiest device's compute.
        let busiest = rep.device_busy_s.iter().copied().fold(0.0, f64::max);
        prop_assert!(rep.makespan_s + 1e-12 >= busiest);
    }

    #[test]
    fn colocated_placement_never_communicates(g in arb_dag()) {
        let c = cluster_with_bandwidth(6e9);
        for d in 0..c.num_devices() {
            let rep = simulate(&g, &Placement::all_on(&g, d), &c);
            prop_assert_eq!(rep.num_transfers, 0);
            prop_assert_eq!(rep.comm_s, 0.0);
        }
    }

    #[test]
    fn more_bandwidth_helps_within_anomaly_bound((g, p) in arb_dag().prop_flat_map(|g| {
        let n = g.num_nodes();
        (Just(g), arb_placement(n, 3))
    })) {
        // Strict makespan monotonicity in bandwidth does NOT hold for
        // greedy list scheduling (Graham's scheduling anomalies: faster
        // transfers can reorder ready queues into worse schedules — the
        // proptest shrinker found a concrete instance). What is
        // guaranteed: total link occupancy strictly shrinks, and the
        // anomaly is bounded (classically ≤ 2×; we assert a tight 1.5×).
        let slow_rep = simulate(&g, &p, &cluster_with_bandwidth(1e9));
        let fast_rep = simulate(&g, &p, &cluster_with_bandwidth(64e9));
        prop_assert!(fast_rep.comm_s <= slow_rep.comm_s + 1e-9,
            "comm time must shrink with bandwidth: {} > {}", fast_rep.comm_s, slow_rep.comm_s);
        prop_assert!(fast_rep.makespan_s <= 1.5 * slow_rep.makespan_s + 1e-9,
            "anomaly beyond bound: fast {} vs slow {}", fast_rep.makespan_s, slow_rep.makespan_s);
    }

    #[test]
    fn memory_check_matches_manual_sum((g, p) in arb_dag().prop_flat_map(|g| {
        let n = g.num_nodes();
        (Just(g), arb_placement(n, 3))
    })) {
        let c = cluster_with_bandwidth(6e9);
        let rep = check_memory(&g, &p, &c).expect("tiny graphs always fit");
        let manual: u64 = g.nodes().iter().map(|n| n.param_bytes + n.activation_bytes).sum();
        prop_assert_eq!(rep.used_bytes.iter().sum::<u64>(), manual);
    }

    #[test]
    fn cut_bytes_consistent_with_cut_edges((g, p) in arb_dag().prop_flat_map(|g| {
        let n = g.num_nodes();
        (Just(g), arb_placement(n, 3))
    })) {
        if p.cut_edges(&g) == 0 {
            prop_assert_eq!(p.cut_bytes(&g), 0);
        }
        if p.cut_bytes(&g) > 0 {
            prop_assert!(p.cut_edges(&g) > 0);
        }
        prop_assert!(p.cut_edges(&g) <= g.num_edges());
    }

    #[test]
    fn faster_devices_never_hurt(g in arb_dag()) {
        let slow_dev = Cluster::new(
            vec![DeviceSpec { peak_gflops: 100.0, ..DeviceSpec::p100(0) }],
            LinkSpec::pcie(),
        );
        let fast_dev = Cluster::new(
            vec![DeviceSpec { peak_gflops: 1000.0, ..DeviceSpec::p100(0) }],
            LinkSpec::pcie(),
        );
        let p = Placement::all_on(&g, 0);
        let t_slow = simulate(&g, &p, &slow_dev).makespan_s;
        let t_fast = simulate(&g, &p, &fast_dev).makespan_s;
        prop_assert!(t_fast <= t_slow + 1e-12);
    }
}
