//! Fleet determinism: distributing rollout evaluation over the wire
//! protocol is an engine change, and engine changes may only move
//! wall-clock. The training trace — every PPO update record, float by
//! float, bit by bit — must be identical across {in-process,
//! 1 worker, 4 workers}, with and without a fault plan, and a worker
//! that crashes mid-run must surface as a clean retry rather than a
//! divergent trace.
//!
//! Workers here are in-process threads serving real fleet connections
//! (`Conn::pair()` — a Unix socketpair), so the full frame/message
//! path is exercised without subprocess overhead. `tests/cli.rs`
//! covers the spawned-process path end to end.

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::net::{worker, Conn, EnvSetup, FleetBackend};
use mars::sim::{Cluster, Environment, FaultPlan};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use std::sync::{Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Serializes the tests in this binary: they read deltas of the
/// process-global `net.*` counters, and the instrumented run installs
/// (and resets) the process-global recorder — interleaving would make
/// both racy.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_cfg() -> MarsConfig {
    let mut c = MarsConfig::small();
    c.encoder_hidden = 16;
    c.placer_hidden = 16;
    c.attn_dim = 8;
    c.segment_size = 24;
    c.dgi_iters = 10;
    c
}

const SEED: u64 = 42;
const SAMPLES: usize = 48;
const PLAN: &str = "fail:2@10, transient:0.25, straggler:0.15x6";

/// The fleet shape of one run: worker thread count, with each worker
/// optionally crashing (dropping its connection without replying)
/// after serving that many units.
struct Fleet {
    unit_limits: Vec<Option<u64>>,
}

impl Fleet {
    fn of(workers: usize) -> Fleet {
        Fleet { unit_limits: vec![None; workers] }
    }
}

fn setup_for(plan_spec: Option<&str>) -> EnvSetup {
    EnvSetup {
        workload: "inception_v3".into(),
        profile: "reduced".into(),
        seed: SEED,
        fault_plan: plan_spec.unwrap_or_default().into(),
        bad_cutoff_s: 20.0,
        invalid_penalty_s: 100.0,
        noise_sigma: 0.03,
        steps_per_eval: 15,
        warmup_steps: 5,
    }
}

/// Pre-train + PPO-train with evaluation optionally sharded over a
/// fleet of worker threads. Returns the training log and the devices
/// left dead at the end.
fn run(plan_spec: Option<&str>, fleet: Option<Fleet>) -> (TrainingLog, Vec<usize>) {
    let setup = setup_for(plan_spec);
    let mut env = setup.build_env().expect("env builds");
    // The learner fires the plan; the Welcome copy is validation-only.
    if let Some(spec) = plan_spec {
        env.set_fault_plan(FaultPlan::parse(spec).expect("plan parses")).expect("plan installs");
    }
    let mut threads: Vec<JoinHandle<Result<(), String>>> = Vec::new();
    if let Some(fleet) = fleet {
        let mut conns = Vec::new();
        for limit in fleet.unit_limits {
            let (learner_end, worker_end) = Conn::pair().expect("socketpair");
            conns.push(learner_end);
            threads.push(std::thread::spawn(move || worker::serve(worker_end, limit)));
        }
        let backend = FleetBackend::over_conns(conns, &setup).expect("fleet handshake");
        env.set_backend(Some(Box::new(backend)));
    }

    let graph = env.graph().clone();
    let input = WorkloadInput::from_graph(&graph);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut agent = Agent::new(
        AgentKind::Mars,
        tiny_cfg(),
        FEATURE_DIM,
        Cluster::p100_quad().num_devices(),
        &mut rng,
    );
    agent.pretrain(&input, &mut rng).expect("Mars agent pre-trains");
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, SAMPLES, &mut rng, &mut log);

    let failed = env.cluster().failed_ids();
    env.set_backend(None); // shut the fleet down so workers see Shutdown/EOF
    for t in threads {
        t.join().expect("worker thread").expect("worker exits cleanly");
    }
    (log, failed)
}

/// The deterministic portion of a training trace, floats as bits
/// (wall-clock fields excluded; simulated machine time included).
type TraceRow = (usize, Option<u64>, Option<u64>, u64, u64, u64);

fn trace_bits(log: &TrainingLog) -> Vec<TraceRow> {
    log.records
        .iter()
        .map(|r| {
            (
                r.samples_so_far,
                r.mean_valid_reading_s.map(f64::to_bits),
                r.best_so_far_s.map(f64::to_bits),
                r.valid_fraction.to_bits(),
                r.machine_s.to_bits(),
                r.policy_entropy.to_bits(),
            )
        })
        .collect()
}

fn assert_same_trace(
    reference: &(TrainingLog, Vec<usize>),
    got: &(TrainingLog, Vec<usize>),
    label: &str,
) {
    assert_eq!(trace_bits(&reference.0), trace_bits(&got.0), "trace diverged: {label}");
    assert_eq!(
        reference.0.best_placement, got.0.best_placement,
        "best placement diverged: {label}"
    );
    assert_eq!(
        reference.0.best_reading_s.map(f64::to_bits),
        got.0.best_reading_s.map(f64::to_bits),
        "best reading diverged: {label}"
    );
    assert_eq!(reference.1, got.1, "degraded cluster diverged: {label}");
}

#[test]
fn fleet_runs_are_bit_identical_to_in_process() {
    let _guard = serialize();
    let reference = run(None, None);
    for workers in [1, 4] {
        let got = run(None, Some(Fleet::of(workers)));
        assert_same_trace(&reference, &got, &format!("{workers} workers, no plan"));
    }
}

#[test]
fn faulty_fleet_runs_are_bit_identical_to_in_process() {
    let _guard = serialize();
    let reference = run(Some(PLAN), None);
    assert_eq!(reference.1, vec![2], "the planned device failure fired");
    for workers in [1, 4] {
        let got = run(Some(PLAN), Some(Fleet::of(workers)));
        assert_same_trace(&reference, &got, &format!("{workers} workers, plan armed"));
    }
}

#[test]
fn mid_run_worker_crash_is_a_clean_retry_not_a_divergence() {
    let _guard = serialize();
    let reference = run(Some(PLAN), None);
    // Two workers; one vanishes after its first unit, mid-training.
    let lost_before = mars::telemetry::counter("net.worker_lost").get();
    let crashy = Fleet { unit_limits: vec![Some(1), None] };
    let got = run(Some(PLAN), Some(crashy));
    assert!(
        mars::telemetry::counter("net.worker_lost").get() > lost_before,
        "the crash must be observed and counted as a lost worker"
    );
    assert_same_trace(&reference, &got, "worker crashed after unit 1");

    // Even losing EVERY worker mid-run only falls back to local
    // compute — the trace still cannot move.
    let lost_before = mars::telemetry::counter("net.worker_lost").get();
    let all_crash = Fleet { unit_limits: vec![Some(1), Some(2)] };
    let got = run(Some(PLAN), Some(all_crash));
    assert!(mars::telemetry::counter("net.worker_lost").get() >= lost_before + 2);
    assert_same_trace(&reference, &got, "all workers crashed");
}

/// Observability is an engine knob too: recording a fleet run (the
/// learner's recorder active through every handshake, dispatch, and
/// merge) must leave the training trace bit-identical to the same
/// fleet run unrecorded — and still produce a capture that describes
/// the fleet.
#[test]
fn instrumented_fleet_run_matches_plain_fleet_run() {
    let _guard = serialize();
    let reference = run(Some(PLAN), Some(Fleet::of(2)));
    let sink = mars::telemetry::install_memory();
    let got = run(Some(PLAN), Some(Fleet::of(2)));
    mars::telemetry::uninstall();
    assert_same_trace(&reference, &got, "telemetry recorder installed");

    let lines = sink.lock().expect("sink").join("\n");
    let summary = mars::telemetry::summarize(&lines).expect("capture parses");
    let report = summary.fleet_report().expect("a recorded fleet run has a fleet report");
    assert_eq!(report.workers_connected, 2, "both handshakes recorded");
    assert!(report.units_completed > 0, "unit completions recorded");
    assert!(report.frames_tx > 0 && report.frames_rx > 0, "wire counters recorded");
    assert!(
        summary.spans.iter().any(|s| s.path.contains("net.fleet.compute_batch")),
        "fleet dispatch spans recorded"
    );
}
