//! Serialization round-trips across the public formats: graph JSON,
//! placement JSON, parameter checkpoints.

use mars::graph::generators::{Profile, Workload};
use mars::graph::CompGraph;
use mars::sim::{Cluster, Placement, SimEnv};

#[test]
fn every_workload_graph_roundtrips_through_json() {
    for w in Workload::ALL {
        let g = w.build(Profile::Reduced);
        let json = g.to_json();
        let g2 = CompGraph::from_json(&json).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        assert_eq!(g.num_nodes(), g2.num_nodes(), "{}", w.name());
        assert_eq!(g.num_edges(), g2.num_edges(), "{}", w.name());
        assert_eq!(g.total_flops(), g2.total_flops(), "{}", w.name());
        assert_eq!(g.total_memory_bytes(), g2.total_memory_bytes(), "{}", w.name());
        // Structure must be preserved exactly (same topo validity, same
        // names in order).
        for (a, b) in g.nodes().iter().zip(g2.nodes()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
        }
    }
}

#[test]
fn deserialized_graph_simulates_identically() {
    let g = Workload::InceptionV3.build(Profile::Reduced);
    let g2 = CompGraph::from_json(&g.to_json()).expect("roundtrip");
    let c = Cluster::p100_quad();
    let mut p = Placement::round_robin(&g, &[1, 2]);
    p.enforce_compatibility(&g, &c);
    let t1 = mars::sim::simulate(&g, &p, &c).makespan_s;
    let t2 = mars::sim::simulate(&g2, &p, &c).makespan_s;
    assert_eq!(t1, t2, "simulation must be bit-identical after JSON roundtrip");
}

#[test]
fn placement_roundtrips_through_json() {
    let g = Workload::Gnmt4.build(Profile::Reduced);
    let c = Cluster::p100_quad();
    let mut p = Placement::round_robin(&g, &[1, 2, 3]);
    p.enforce_compatibility(&g, &c);
    let json = p.to_json();
    let p2 = Placement::from_json(&json).expect("deserialize");
    assert_eq!(p, p2);

    // And it still evaluates the same.
    let mut env1 = SimEnv::new(g.clone(), c.clone(), 9);
    let mut env2 = SimEnv::new(g, c, 9);
    use mars::sim::Environment;
    assert_eq!(env1.evaluate(&p), env2.evaluate(&p2));
}

#[test]
fn cluster_roundtrips_through_json() {
    let c = Cluster::heterogeneous();
    let json = c.to_json();
    let c2 = Cluster::from_json(&json).expect("deserialize");
    assert_eq!(c.num_devices(), c2.num_devices());
    for d in 0..c.num_devices() {
        assert_eq!(c.device(d).peak_gflops, c2.device(d).peak_gflops);
        assert_eq!(c.device(d).memory_bytes, c2.device(d).memory_bytes);
    }
    // Per-pair link overrides survive.
    assert_eq!(c.link(1, 2).bandwidth_bps, c2.link(1, 2).bandwidth_bps);
    assert_eq!(c.link(1, 3).bandwidth_bps, c2.link(1, 3).bandwidth_bps);
}
