//! The Paper (fine-grained) profile must preserve every calibrated
//! property of the Reduced profile — OOM patterns, baseline orderings,
//! absolute scale — since the two differ only in op granularity.

use mars::core::baselines::{gpu_only, human_expert};
use mars::graph::generators::{Profile, Workload};
use mars::sim::{check_memory, Cluster, Placement, SimEnv};

#[test]
fn table2_oom_pattern_holds_at_paper_granularity() {
    let c = Cluster::p100_quad();
    // GPU-Only: valid for Inception, OOM for GNMT and BERT.
    let inception = Workload::InceptionV3.build(Profile::Paper);
    assert!(check_memory(&inception, &gpu_only(&inception, &c), &c).is_ok());
    for w in [Workload::Gnmt4, Workload::BertBase] {
        let g = w.build(Profile::Paper);
        assert!(check_memory(&g, &gpu_only(&g, &c), &c).is_err(), "{}", w.name());
    }
    // Human expert: valid for GNMT (round-robin layers), OOM for BERT.
    let gnmt = Workload::Gnmt4.build(Profile::Paper);
    assert!(check_memory(&gnmt, &human_expert(Workload::Gnmt4, &gnmt, &c), &c).is_ok());
    let bert = Workload::BertBase.build(Profile::Paper);
    assert!(check_memory(&bert, &human_expert(Workload::BertBase, &bert, &c), &c).is_err());
}

#[test]
fn absolute_scale_matches_between_profiles() {
    // The same placement family must produce similar step times in
    // both profiles (total cost is profile-invariant).
    let c = Cluster::p100_quad();
    for (w, devices) in [
        (Workload::InceptionV3, vec![1usize]),
        (Workload::Gnmt4, vec![1usize, 2, 3, 4]),
        (Workload::BertBase, vec![1usize, 2, 3]),
    ] {
        let time = |p: Profile| {
            let g = w.build(p);
            let env = SimEnv::new(g.clone(), c.clone(), 0);
            let mut placement = if devices.len() == 1 {
                Placement::all_on(&g, devices[0])
            } else if w == Workload::BertBase {
                Placement::blocked(&g, &devices)
            } else {
                Placement::round_robin(&g, &devices)
            };
            placement.enforce_compatibility(&g, &c);
            env.true_step_time(&placement).expect("valid placement").makespan_s
        };
        let reduced = time(Profile::Reduced);
        let paper = time(Profile::Paper);
        let ratio = paper / reduced;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{}: paper {paper:.3}s vs reduced {reduced:.3}s (ratio {ratio:.2})",
            w.name()
        );
    }
}

#[test]
fn human_expert_gnmt_ordering_holds_at_paper_granularity() {
    // RL-discoverable pipelined placement must beat the human expert at
    // paper granularity too (the Table 2 headline).
    let c = Cluster::p100_quad();
    let g = Workload::Gnmt4.build(Profile::Paper);
    let env = SimEnv::new(g.clone(), c.clone(), 0);
    let human =
        env.true_step_time(&human_expert(Workload::Gnmt4, &g, &c)).expect("valid").makespan_s;
    let mut rr = Placement::round_robin(&g, &[1, 2, 3, 4]);
    rr.enforce_compatibility(&g, &c);
    let pipelined = env.true_step_time(&rr).expect("valid").makespan_s;
    assert!(
        pipelined < human,
        "pipelined {pipelined:.3}s must beat human {human:.3}s at paper scale"
    );
}
