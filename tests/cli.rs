//! Smoke tests of the `mars-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mars-cli"))
}

#[test]
fn inspect_prints_graph_stats() {
    let out = cli().args(["inspect", "inception"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("workload inception_v3"), "{text}");
    assert!(text.contains("baselines"), "{text}");
    assert!(text.contains("gpu-only"), "{text}");
}

#[test]
fn inspect_reports_gnmt_oom() {
    let out = cli().args(["inspect", "gnmt"]).output().expect("run");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("out of memory"), "GNMT gpu-only must OOM: {text}");
}

#[test]
fn trace_renders_gantt() {
    let out = cli().args(["trace", "bert", "--placement", "blocked3"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dev1 |"), "{text}");
    assert!(text.contains("idle"), "{text}");
}

#[test]
fn dot_emits_graphviz() {
    let out = cli().args(["dot", "vgg", "--max-nodes", "10"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("more ops"));
}

#[test]
fn evaluate_measures_placement() {
    let out =
        cli().args(["evaluate", "inception", "--placement", "gpu-only"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("s/step"), "{text}");
}

#[test]
fn unknown_workload_fails_cleanly() {
    let out = cli().args(["inspect", "alexnet"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown workload"), "{err}");
}

#[test]
fn missing_args_print_usage() {
    let out = cli().output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn malformed_numeric_flag_is_rejected() {
    let out = cli().args(["train", "inception", "--budget", "lots"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid value 'lots' for --budget"), "{err}");
}

#[test]
fn zero_eval_threads_is_rejected() {
    let out = cli().args(["train", "inception", "--eval-threads", "0"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--eval-threads"), "{err}");
}

#[test]
fn switch_with_value_is_rejected() {
    let out = cli().args(["train", "inception", "--no-eval-cache", "yes"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--no-eval-cache") && err.contains("takes no value"), "{err}");
}

#[test]
fn unknown_agent_lists_the_choices() {
    let out = cli().args(["train", "inception", "--agent", "zeus"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("'zeus'") && err.contains("mars"), "{err}");
}

#[test]
fn malformed_fault_plan_is_rejected() {
    let out = cli().args(["evaluate", "inception", "--fault-plan", "bogus"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--fault-plan"), "{err}");
}

#[test]
fn fault_plan_straggler_aborts_evaluation() {
    let out = cli()
        .args([
            "evaluate",
            "inception",
            "--placement",
            "gpu-only",
            "--fault-plan",
            "straggler:100000@0",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("straggler"), "{text}");
}

#[test]
fn train_with_device_failure_reports_degraded_cluster() {
    let out = cli()
        .args([
            "train",
            "inception",
            "--agent",
            "mars-nopre",
            "--budget",
            "40",
            "--seed",
            "7",
            "--fault-plan",
            "fail:2@10",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fault plan armed"), "{text}");
    assert!(text.contains("cluster degraded: failed devices [2]"), "{text}");
}

#[test]
fn bench_gate_passes_against_itself() {
    let out = cli()
        .args(["bench-gate", "--current", "BENCH_e2e.json", "--baseline", "BENCH_e2e.json"])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bench gate passed"), "{text}");
    assert!(text.contains("ratio 1.000"), "{text}");
}

#[test]
fn bench_gate_fails_on_regression() {
    let dir = std::env::temp_dir().join("mars-cli-bench-gate");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let bad = dir.join("regressed.json");
    std::fs::write(&bad, r#"{"speedup": 0.01}"#).expect("write");
    let out = cli()
        .args(["bench-gate", "--current", bad.to_str().expect("utf8"), "--min-ratio", "0.5"])
        .output()
        .expect("run");
    assert!(!out.status.success(), "a 100x regression must fail the gate");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("benchmark regression"), "{err}");
    let _ = std::fs::remove_file(bad);
}

#[test]
fn bench_gate_rejects_malformed_ratio() {
    let out = cli()
        .args(["bench-gate", "--current", "BENCH_e2e.json", "--min-ratio", "high"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid value 'high' for --min-ratio"), "{err}");
}

#[test]
fn train_and_save_checkpoint() {
    let dir = std::env::temp_dir().join("mars-cli-test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let ckpt = dir.join("agent.mars");
    let out = cli()
        .args([
            "train",
            "inception",
            "--agent",
            "mars-nopre",
            "--budget",
            "40",
            "--seed",
            "7",
            "--save",
            ckpt.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best "), "{text}");
    assert!(ckpt.exists(), "checkpoint file written");
    // Checkpoint header is the MARS magic.
    let bytes = std::fs::read(&ckpt).expect("read ckpt");
    assert_eq!(&bytes[..4], b"MARS");
    let _ = std::fs::remove_file(ckpt);
}
