//! Smoke tests of the `mars-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mars-cli"))
}

#[test]
fn inspect_prints_graph_stats() {
    let out = cli().args(["inspect", "inception"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("workload inception_v3"), "{text}");
    assert!(text.contains("baselines"), "{text}");
    assert!(text.contains("gpu-only"), "{text}");
}

#[test]
fn inspect_reports_gnmt_oom() {
    let out = cli().args(["inspect", "gnmt"]).output().expect("run");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("out of memory"), "GNMT gpu-only must OOM: {text}");
}

#[test]
fn trace_renders_gantt() {
    let out = cli().args(["trace", "bert", "--placement", "blocked3"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dev1 |"), "{text}");
    assert!(text.contains("idle"), "{text}");
}

#[test]
fn dot_emits_graphviz() {
    let out = cli().args(["dot", "vgg", "--max-nodes", "10"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("more ops"));
}

#[test]
fn evaluate_measures_placement() {
    let out = cli().args(["evaluate", "inception", "--placement", "gpu-only"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("s/step"), "{text}");
}

#[test]
fn unknown_workload_fails_cleanly() {
    let out = cli().args(["inspect", "alexnet"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown workload"), "{err}");
}

#[test]
fn missing_args_print_usage() {
    let out = cli().output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn train_and_save_checkpoint() {
    let dir = std::env::temp_dir().join("mars-cli-test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let ckpt = dir.join("agent.mars");
    let out = cli()
        .args([
            "train",
            "inception",
            "--agent",
            "mars-nopre",
            "--budget",
            "40",
            "--seed",
            "7",
            "--save",
            ckpt.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best "), "{text}");
    assert!(ckpt.exists(), "checkpoint file written");
    // Checkpoint header is the MARS magic.
    let bytes = std::fs::read(&ckpt).expect("read ckpt");
    assert_eq!(&bytes[..4], b"MARS");
    let _ = std::fs::remove_file(ckpt);
}
