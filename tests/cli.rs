//! Smoke tests of the `mars-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mars-cli"))
}

#[test]
fn inspect_prints_graph_stats() {
    let out = cli().args(["inspect", "inception"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("workload inception_v3"), "{text}");
    assert!(text.contains("baselines"), "{text}");
    assert!(text.contains("gpu-only"), "{text}");
}

#[test]
fn inspect_reports_gnmt_oom() {
    let out = cli().args(["inspect", "gnmt"]).output().expect("run");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("out of memory"), "GNMT gpu-only must OOM: {text}");
}

#[test]
fn trace_renders_gantt() {
    let out = cli().args(["trace", "bert", "--placement", "blocked3"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dev1 |"), "{text}");
    assert!(text.contains("idle"), "{text}");
}

#[test]
fn dot_emits_graphviz() {
    let out = cli().args(["dot", "vgg", "--max-nodes", "10"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("more ops"));
}

#[test]
fn evaluate_measures_placement() {
    let out =
        cli().args(["evaluate", "inception", "--placement", "gpu-only"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("s/step"), "{text}");
}

#[test]
fn unknown_workload_fails_cleanly() {
    let out = cli().args(["inspect", "alexnet"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown workload"), "{err}");
}

#[test]
fn missing_args_print_usage() {
    let out = cli().output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn malformed_numeric_flag_is_rejected() {
    let out = cli().args(["train", "inception", "--budget", "lots"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid value 'lots' for --budget"), "{err}");
}

#[test]
fn zero_eval_threads_is_rejected() {
    let out = cli().args(["train", "inception", "--eval-threads", "0"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--eval-threads"), "{err}");
}

#[test]
fn switch_with_value_is_rejected() {
    let out = cli().args(["train", "inception", "--no-eval-cache", "yes"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--no-eval-cache") && err.contains("takes no value"), "{err}");
}

#[test]
fn unknown_agent_lists_the_choices() {
    let out = cli().args(["train", "inception", "--agent", "zeus"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("'zeus'") && err.contains("mars"), "{err}");
}

#[test]
fn malformed_fault_plan_is_rejected() {
    let out = cli().args(["evaluate", "inception", "--fault-plan", "bogus"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--fault-plan"), "{err}");
}

#[test]
fn fault_plan_straggler_aborts_evaluation() {
    let out = cli()
        .args([
            "evaluate",
            "inception",
            "--placement",
            "gpu-only",
            "--fault-plan",
            "straggler:100000@0",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("straggler"), "{text}");
}

#[test]
fn train_with_device_failure_reports_degraded_cluster() {
    let out = cli()
        .args([
            "train",
            "inception",
            "--agent",
            "mars-nopre",
            "--budget",
            "40",
            "--seed",
            "7",
            "--fault-plan",
            "fail:2@10",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fault plan armed"), "{text}");
    assert!(text.contains("cluster degraded: failed devices [2]"), "{text}");
}

#[test]
fn bench_gate_passes_against_itself() {
    let out = cli()
        .args(["bench-gate", "--current", "BENCH_e2e.json", "--baseline", "BENCH_e2e.json"])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bench gate passed"), "{text}");
    assert!(text.contains("ratio 1.000"), "{text}");
}

#[test]
fn bench_gate_fails_on_regression() {
    let dir = std::env::temp_dir().join("mars-cli-bench-gate");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let bad = dir.join("regressed.json");
    std::fs::write(
        &bad,
        r#"{"benchmarks": [{"name": "rollout_e2e/serial_nocache", "iters": 1, "median_ns": 133000000}], "speedup": 0.01}"#,
    )
    .expect("write");
    let out = cli()
        .args(["bench-gate", "--current", bad.to_str().expect("utf8"), "--min-ratio", "0.5"])
        .output()
        .expect("run");
    assert!(!out.status.success(), "a 100x regression must fail the gate");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("benchmark regression"), "{err}");
    let _ = std::fs::remove_file(bad);
}

#[test]
fn bench_gate_rejects_empty_or_missing_samples() {
    // A bench JSON with no samples must fail the gate with a clear
    // error — not pass vacuously, not panic on an index.
    let dir = std::env::temp_dir().join("mars-cli-bench-gate");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    for (name, body) in [
        ("empty-samples.json", r#"{"benchmarks": [], "speedup": 1.5}"#),
        ("no-samples.json", r#"{"speedup": 1.5}"#),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, body).expect("write");
        let out = cli()
            .args(["bench-gate", "--current", path.to_str().expect("utf8")])
            .output()
            .expect("run");
        assert!(!out.status.success(), "{name} must fail the gate");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("no benchmark samples"), "{name}: {err}");
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn bench_gate_kernels_pass_against_itself() {
    let out = cli()
        .args([
            "bench-gate",
            "--kernels",
            "BENCH_kernels.json",
            "--kernels-baseline",
            "BENCH_kernels.json",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bench gate passed"), "{text}");
    assert!(text.contains("kernel 'matmul/256' normalized ratio 1.000"), "{text}");
}

#[test]
fn bench_gate_names_the_regressed_kernel() {
    // The per-kernel gate is geomean-normalized, so the current file
    // being uniformly slower (a slower machine) is fine — but one
    // kernel collapsing relative to its peers must fail, naming it.
    let dir = std::env::temp_dir().join("mars-cli-bench-gate");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let base = dir.join("kernels-base.json");
    let bad = dir.join("kernels-regressed.json");
    std::fs::write(
        &base,
        r#"{"benchmarks": [
            {"name": "matmul/256", "iters": 100, "median_ns": 1000000},
            {"name": "softmax/4096", "iters": 100, "median_ns": 10000},
            {"name": "lstm_cell/fused", "iters": 100, "median_ns": 15000}]}"#,
    )
    .expect("write");
    std::fs::write(
        &bad,
        r#"{"benchmarks": [
            {"name": "matmul/256", "iters": 100, "median_ns": 9000000},
            {"name": "softmax/4096", "iters": 100, "median_ns": 10000},
            {"name": "lstm_cell/fused", "iters": 100, "median_ns": 15000}]}"#,
    )
    .expect("write");
    let out = cli()
        .args([
            "bench-gate",
            "--kernels",
            bad.to_str().expect("utf8"),
            "--kernels-baseline",
            base.to_str().expect("utf8"),
        ])
        .output()
        .expect("run");
    assert!(!out.status.success(), "the collapsed matmul kernel must fail the gate");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("matmul/256"), "the failing kernel must be named: {err}");
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(bad);
}

#[test]
fn bench_gate_without_inputs_prints_usage() {
    let out = cli().args(["bench-gate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"), "usage expected");
}

#[test]
fn fast_math_flag_is_accepted_and_announced() {
    let out = cli()
        .args(["evaluate", "inception", "--placement", "gpu-only", "--fast-math"])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fast-math tier enabled"), "{text}");
    assert!(text.contains("s/step"), "{text}");
}

#[test]
fn fleet_flag_combinations_are_validated() {
    for (args, needle) in [
        (vec!["train", "inception", "--workers", "0"], "--workers"),
        (vec!["train", "inception", "--workers", "two"], "--workers"),
        (vec!["train", "inception", "--listen", "unix:/tmp/x.sock"], "--listen"),
        (
            vec![
                "train",
                "inception",
                "--listen",
                "unix:/tmp/a.sock",
                "--connect",
                "unix:/tmp/b.sock",
            ],
            "mutually exclusive",
        ),
        (vec!["train", "inception", "--workers", "2", "--connect", "h:1"], "--connect"),
        (vec!["train", "inception", "--connect", "not-an-address"], "'not-an-address'"),
        (vec!["train", "inception", "--workers", "2", "--listen", "host:99999"], "--listen"),
    ] {
        let out = cli().args(&args).output().expect("run");
        assert!(!out.status.success(), "{args:?} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{args:?}: expected '{needle}' in: {err}");
    }
}

#[test]
fn fleet_train_matches_in_process_byte_for_byte() {
    // The real thing: `--workers 2` spawns two worker processes over a
    // private socket, and the training output — the user-visible trace
    // — must be identical to the in-process run except for the fleet
    // status lines.
    let base = ["train", "inception", "--budget", "40", "--dgi-iters", "10", "--seed", "1"];
    let inproc = cli().args(base).output().expect("run");
    assert!(inproc.status.success(), "{}", String::from_utf8_lossy(&inproc.stderr));
    let fleet = cli().args(base).args(["--workers", "2"]).output().expect("run");
    assert!(fleet.status.success(), "{}", String::from_utf8_lossy(&fleet.stderr));
    let fleet_text = String::from_utf8_lossy(&fleet.stdout);
    assert!(fleet_text.contains("fleet: 2 worker(s) connected"), "{fleet_text}");
    let stripped: String =
        fleet_text.lines().filter(|l| !l.starts_with("fleet")).map(|l| format!("{l}\n")).collect();
    assert_eq!(
        stripped,
        String::from_utf8_lossy(&inproc.stdout),
        "fleet run diverged from in-process"
    );
}

#[test]
fn fleet_telemetry_merges_into_one_observable_run_file() {
    // The observability acceptance path: a spawned 2-worker fleet run
    // with --telemetry produces ONE merged JSONL that summarize,
    // flame, and tail can each render with per-worker attribution.
    let dir = std::env::temp_dir().join("mars-cli-fleet-telemetry");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let run = dir.join("fleet_run.jsonl");
    let run_path = run.to_str().expect("utf8 path");
    let out = cli()
        .args(["train", "inception", "--budget", "40", "--dgi-iters", "10", "--seed", "1"])
        .args(["--workers", "2", "--telemetry", run_path])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(run.exists(), "merged run file written");

    // summarize: learner span tree, per-worker span trees, the fleet
    // health table, and the wire counters — all from the one file.
    let out = cli().args(["metrics", "summarize", run_path]).output().expect("summarize");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== span tree"), "{text}");
    for worker in ["worker 0", "worker 1"] {
        assert!(text.contains(&format!("== {worker} span tree")), "{text}");
    }
    assert!(text.contains("net.worker.unit"), "worker spans attributed: {text}");
    assert!(text.contains("== fleet =="), "{text}");
    assert!(text.contains("workers: 2 connected"), "{text}");
    assert!(text.contains("frames"), "net counters surfaced: {text}");
    assert!(text.contains("units/s"), "health table rendered: {text}");

    // flame: collapsed-stack lines (`stack value`), one process
    // prefix per participant.
    let out = cli().args(["metrics", "flame", run_path]).output().expect("flame");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().any(|l| l.starts_with("learner;")), "{text}");
    for worker in ["worker:0;", "worker:1;"] {
        assert!(text.lines().any(|l| l.starts_with(worker)), "{text}");
    }
    for line in text.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("collapsed line has a value");
        assert!(
            !stack.is_empty() && !stack.contains(' '),
            "frames must not contain spaces: {line}"
        );
        value.parse::<u64>().expect("collapsed value is an integer");
    }

    // tail: one line per record; a complete run ends at the
    // histograms summary, so --follow terminates on its own.
    let out = cli()
        .args(["metrics", "tail", run_path, "--lines", "0", "--follow"])
        .output()
        .expect("tail");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("run complete"), "{text}");
    assert!(text.contains("fleet.health"), "health heartbeats in the tail: {text}");
    let bounded = cli().args(["metrics", "tail", run_path, "--lines", "5"]).output().expect("tail");
    assert!(bounded.status.success());
    assert_eq!(
        String::from_utf8_lossy(&bounded.stdout).lines().count(),
        5,
        "--lines bounds output"
    );

    let _ = std::fs::remove_file(run);
}

#[test]
fn bench_gate_names_the_regressed_arm() {
    // Per-arm gating is serial-normalized, so a current file with a
    // faster absolute wall-clock can still fail on the one arm whose
    // speedup over serial collapsed — and the error must say which.
    let dir = std::env::temp_dir().join("mars-cli-bench-gate");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let bad = dir.join("arm-regressed.json");
    std::fs::write(
        &bad,
        r#"{"benchmarks": [
            {"name": "rollout_e2e/serial_nocache", "iters": 6, "median_ns": 13000000},
            {"name": "rollout_e2e/threads4_cache", "iters": 6, "median_ns": 8500000},
            {"name": "rollout_e2e/fleet2_unix", "iters": 6, "median_ns": 90000000}],
            "speedup": 1.53}"#,
    )
    .expect("write");
    let out = cli()
        .args(["bench-gate", "--current", bad.to_str().expect("utf8"), "--min-ratio", "0.5"])
        .output()
        .expect("run");
    assert!(!out.status.success(), "the collapsed fleet arm must fail the gate");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("fleet2_unix"), "the failing arm must be named: {err}");
    let _ = std::fs::remove_file(bad);
}

#[test]
fn summarize_survives_a_torn_final_line() {
    // A crash mid-write leaves a torn last line; summarize must render
    // the surviving records and say what it skipped.
    let dir = std::env::temp_dir().join("mars-cli-torn-line");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let run = dir.join("torn.jsonl");
    std::fs::write(
        &run,
        concat!(
            r#"{"seq":1,"kind":"event","name":"ppo.update","loss":0.5}"#,
            "\n",
            r#"{"seq":2,"kind":"event","name":"ppo.up"#, // torn mid-record
        ),
    )
    .expect("write");
    let out = cli()
        .args(["metrics", "summarize", run.to_str().expect("utf8")])
        .output()
        .expect("summarize");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("skipped 1 malformed line"), "{text}");
    let _ = std::fs::remove_file(run);
}

#[test]
fn bench_gate_rejects_malformed_ratio() {
    let out = cli()
        .args(["bench-gate", "--current", "BENCH_e2e.json", "--min-ratio", "high"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid value 'high' for --min-ratio"), "{err}");
}

#[test]
fn train_and_save_checkpoint() {
    let dir = std::env::temp_dir().join("mars-cli-test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let ckpt = dir.join("agent.mars");
    let out = cli()
        .args([
            "train",
            "inception",
            "--agent",
            "mars-nopre",
            "--budget",
            "40",
            "--seed",
            "7",
            "--save",
            ckpt.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best "), "{text}");
    assert!(ckpt.exists(), "checkpoint file written");
    // Checkpoint header is the MARS magic.
    let bytes = std::fs::read(&ckpt).expect("read ckpt");
    assert_eq!(&bytes[..4], b"MARS");
    let _ = std::fs::remove_file(ckpt);
}
