//! Determinism under fault injection: an armed fault plan must change
//! *what* happens (failures, retries, remaps) without breaking the
//! invariant that the rollout engine (evaluation threads, memo cache)
//! changes wall-clock only. A faulty run must be bit-identical across
//! `--eval-threads {1,4}` × cache on/off, and an injected crash —
//! absorbed by a checkpoint save/reload roundtrip — must leave no trace
//! in the training record.

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{Cluster, Environment, FaultPlan, SimEnv};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn tiny_cfg() -> MarsConfig {
    let mut c = MarsConfig::small();
    c.encoder_hidden = 16;
    c.placer_hidden = 16;
    c.attn_dim = 8;
    c.segment_size = 24;
    c.dgi_iters = 10;
    c
}

/// Pre-train + PPO-train under an optional fault plan; return the
/// training log and the devices left dead at the end of the run.
fn run_faulty(
    seed: u64,
    samples: usize,
    eval_threads: usize,
    eval_cache: bool,
    plan_spec: Option<&str>,
    auto_checkpoint: Option<String>,
) -> (TrainingLog, Vec<usize>) {
    let graph = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = tiny_cfg();
    cfg.auto_checkpoint = auto_checkpoint;
    let mut agent = Agent::new(AgentKind::Mars, cfg, FEATURE_DIM, cluster.num_devices(), &mut rng);
    agent.pretrain(&input, &mut rng).expect("Mars agent pre-trains");
    let mut env = SimEnv::new(graph, cluster, seed);
    env.set_eval_threads(eval_threads);
    env.set_cache_enabled(eval_cache);
    if let Some(spec) = plan_spec {
        env.set_fault_plan(FaultPlan::parse(spec).expect("plan parses")).expect("plan installs");
    }
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, samples, &mut rng, &mut log);
    let failed = env.cluster().failed_ids();
    (log, failed)
}

/// The deterministic portion of a training trace, floats as bits
/// (wall-clock fields excluded). Simulated machine time IS included:
/// retries and stragglers must cost the same in every engine.
type TraceRow = (usize, Option<u64>, Option<u64>, u64, u64, u64);

fn trace_bits(log: &TrainingLog) -> Vec<TraceRow> {
    log.records
        .iter()
        .map(|r| {
            (
                r.samples_so_far,
                r.mean_valid_reading_s.map(f64::to_bits),
                r.best_so_far_s.map(f64::to_bits),
                r.valid_fraction.to_bits(),
                r.machine_s.to_bits(),
                r.policy_entropy.to_bits(),
            )
        })
        .collect()
}

const PLAN: &str = "fail:2@10, transient:0.25, straggler:0.15x6";

#[test]
fn faulty_run_is_bit_identical_across_eval_engines() {
    let (log_ref, failed_ref) = run_faulty(42, 48, 1, false, Some(PLAN), None);
    assert_eq!(failed_ref, vec![2], "the planned device failure fired");
    for (threads, cache) in [(4, false), (1, true), (4, true)] {
        let (log, failed) = run_faulty(42, 48, threads, cache, Some(PLAN), None);
        assert_eq!(
            trace_bits(&log_ref),
            trace_bits(&log),
            "faulty trace diverged with threads={threads} cache={cache}"
        );
        assert_eq!(log_ref.best_placement, log.best_placement);
        assert_eq!(log_ref.best_reading_s.map(f64::to_bits), log.best_reading_s.map(f64::to_bits));
        assert_eq!(failed_ref, failed, "degraded cluster diverged");
    }
}

#[test]
fn fault_plan_changes_the_trace() {
    // Sanity: the plan above is not a no-op — a healthy run reads
    // differently (and spends less machine time on retries).
    let (faulty, _) = run_faulty(42, 48, 1, true, Some(PLAN), None);
    let (clean, failed) = run_faulty(42, 48, 1, true, None, None);
    assert_eq!(failed, Vec::<usize>::new());
    assert_ne!(trace_bits(&faulty), trace_bits(&clean), "fault plan had no effect");
}

#[test]
fn crash_resume_is_invisible_in_the_trace() {
    // A crash alone (no other faults) is absorbed by a bit-exact
    // checkpoint roundtrip: the resumed run must equal the
    // uninterrupted one — through the in-memory path and through a
    // real checkpoint file.
    let (clean, _) = run_faulty(42, 48, 1, true, None, None);
    let (crashed_mem, _) = run_faulty(42, 48, 1, true, Some("crash@24"), None);
    assert_eq!(trace_bits(&clean), trace_bits(&crashed_mem), "in-memory resume left a trace");
    assert_eq!(clean.best_placement, crashed_mem.best_placement);

    let path = std::env::temp_dir().join("mars-fault-determinism.ckpt");
    let (crashed_file, _) =
        run_faulty(42, 48, 1, true, Some("crash@24"), Some(path.to_str().expect("utf8").into()));
    assert_eq!(trace_bits(&clean), trace_bits(&crashed_file), "file resume left a trace");
    assert!(path.exists(), "auto-checkpoint written");
    let _ = std::fs::remove_file(path);
}
