//! The telemetry determinism contract: a training run with a recorder
//! installed and spans enabled must be bit-identical to the same run
//! with telemetry fully disabled. Telemetry only *observes* — it never
//! touches an RNG stream or feeds back into numerics.

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{Cluster, SimEnv};
use mars::telemetry;
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn tiny_cfg() -> MarsConfig {
    let mut c = MarsConfig::small();
    c.encoder_hidden = 16;
    c.placer_hidden = 16;
    c.attn_dim = 8;
    c.segment_size = 24;
    c.dgi_iters = 20;
    c
}

fn run(seed: u64, samples: usize) -> (Vec<f32>, TrainingLog) {
    let graph = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent =
        Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, cluster.num_devices(), &mut rng);
    let report = agent.pretrain(&input, &mut rng).expect("Mars agent pre-trains");
    let mut env = SimEnv::new(graph, cluster, seed);
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, samples, &mut rng, &mut log);
    (report.losses, log)
}

/// The deterministic portion of a training trace, floats as bits
/// (wall-clock fields excluded).
/// One record's observable bits: (round, best, last, reward, entropy, loss).
type TraceRow = (usize, Option<u64>, Option<u64>, u64, u64, u64);

fn trace_bits(log: &TrainingLog) -> Vec<TraceRow> {
    log.records
        .iter()
        .map(|r| {
            (
                r.samples_so_far,
                r.mean_valid_reading_s.map(f64::to_bits),
                r.best_so_far_s.map(f64::to_bits),
                r.valid_fraction.to_bits(),
                r.machine_s.to_bits(),
                r.policy_entropy.to_bits(),
            )
        })
        .collect()
}

#[test]
fn telemetry_does_not_perturb_training() {
    // Plain run: no recorder, spans off.
    let (losses_off, log_off) = run(42, 48);

    // Instrumented run: memory recorder + spans on, full event stream.
    let sink = telemetry::install_memory();
    let (losses_on, log_on) = run(42, 48);
    assert!(telemetry::uninstall(), "recorder was installed");

    // The capture must actually contain the instrumentation output…
    let text = sink.lock().unwrap().join("\n");
    let summary = telemetry::summarize(&text).expect("capture parses");
    assert!(summary.events > 0, "no events recorded");
    assert!(
        summary.spans.iter().any(|s| s.path.contains("tensor.ops.")),
        "no tensor kernel spans recorded"
    );
    assert!(
        summary.rollups.iter().any(|r| r.event == "ppo.update"),
        "no PPO update events recorded"
    );

    // …while the numerics stay bit-identical.
    assert_eq!(losses_off.len(), losses_on.len());
    for (i, (a, b)) in losses_off.iter().zip(&losses_on).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "DGI loss diverged at iter {i}: {a} vs {b}");
    }
    assert_eq!(trace_bits(&log_off), trace_bits(&log_on));
    assert_eq!(log_off.best_placement, log_on.best_placement);
    assert_eq!(log_off.best_reading_s.map(f64::to_bits), log_on.best_reading_s.map(f64::to_bits));
}
