//! End-to-end smoke test: the smallest useful run of the full pipeline
//! — tiny DGI pre-training plus a short PPO loop — must produce finite
//! losses and a memory-valid placement. This is the test `verify.sh`
//! leans on to prove the hermetic build actually works.

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{check_memory, simulate, Cluster, SimEnv};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

#[test]
fn tiny_pipeline_produces_finite_losses_and_valid_placement() {
    let mut cfg = MarsConfig::small();
    cfg.encoder_hidden = 16;
    cfg.placer_hidden = 16;
    cfg.attn_dim = 8;
    cfg.segment_size = 24;
    cfg.dgi_iters = 15;

    let graph = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(7);
    let mut agent = Agent::new(AgentKind::Mars, cfg, FEATURE_DIM, cluster.num_devices(), &mut rng);

    // DGI pre-training: every contrastive loss must be finite, and the
    // best loss must actually come from the curve.
    let report = agent.pretrain(&input, &mut rng).expect("Mars agent pre-trains");
    assert!(!report.losses.is_empty());
    assert!(report.losses.iter().all(|l| l.is_finite()), "non-finite DGI loss");
    assert_eq!(report.losses[report.best_iter], report.best_loss);

    // Short PPO loop against the simulator.
    let mut env = SimEnv::new(graph.clone(), cluster.clone(), 7);
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, 32, &mut rng, &mut log);

    assert!(log.total_samples >= 32);
    assert!(!log.records.is_empty(), "no policy updates recorded");
    for r in &log.records {
        assert!(r.valid_fraction.is_finite() && (0.0..=1.0).contains(&r.valid_fraction));
        assert!(r.policy_entropy.is_finite(), "non-finite policy entropy");
        if let Some(m) = r.mean_valid_reading_s {
            assert!(m.is_finite() && m > 0.0);
        }
    }

    // The best placement must be memory-valid and simulate to the
    // logged reading.
    let best = log.best_placement.expect("found a valid placement");
    let reading = log.best_reading_s.expect("recorded its reading");
    assert!(reading.is_finite() && reading > 0.0);
    check_memory(&graph, &best, &cluster).expect("best placement fits in device memory");
    let rep = simulate(&graph, &best, &cluster);
    assert!(rep.makespan_s.is_finite() && rep.makespan_s > 0.0);
}
