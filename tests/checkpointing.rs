//! Checkpoint workflows across the full agent stack.

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::nn::checkpoint;
use mars::sim::{Cluster, SimEnv};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn tiny_cfg() -> MarsConfig {
    let mut c = MarsConfig::small();
    c.encoder_hidden = 16;
    c.placer_hidden = 16;
    c.attn_dim = 8;
    c.segment_size = 16;
    c.dgi_iters = 20;
    c
}

#[test]
fn trained_policy_survives_checkpoint_roundtrip() {
    let graph = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(17);

    // Train an agent a little.
    let mut agent =
        Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, cluster.num_devices(), &mut rng);
    agent.pretrain(&input, &mut rng);
    let mut env = SimEnv::new(graph.clone(), cluster.clone(), 17);
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, 60, &mut rng, &mut log);
    let trained_probs = agent.policy_probs(&input);

    // Serialize, then restore into a FRESH agent with the same layout.
    let mut buf = Vec::new();
    checkpoint::save(&agent.store, &mut buf).expect("save");
    let mut rng2 = StdRng::seed_from_u64(999); // different init
    let mut fresh =
        Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, cluster.num_devices(), &mut rng2);
    let fresh_probs_before = fresh.policy_probs(&input);
    assert!(
        trained_probs.max_abs_diff(&fresh_probs_before) > 1e-4,
        "fresh agent should differ before restore"
    );
    let restored = checkpoint::load(&mut fresh.store, &mut buf.as_slice()).expect("load");
    assert_eq!(restored, agent.store.len(), "every parameter restored");
    let fresh_probs_after = fresh.policy_probs(&input);
    assert!(
        trained_probs.max_abs_diff(&fresh_probs_after) < 1e-6,
        "restored agent must reproduce the trained policy exactly"
    );
}

#[test]
fn pretrained_encoder_transfers_between_agent_kinds() {
    // Save a Mars agent's (pretrained) store, load into a fresh Mars
    // agent used as a FixedEncoder source: the by-name partial loading
    // must restore the shared GCN/DGI parameters.
    let graph = Workload::Vgg16.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(5);
    let mut donor =
        Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, cluster.num_devices(), &mut rng);
    donor.pretrain(&input, &mut rng);
    let mut buf = Vec::new();
    checkpoint::save(&donor.store, &mut buf).expect("save");

    let mut recipient = Agent::new(
        AgentKind::MarsNoPretrain,
        tiny_cfg(),
        FEATURE_DIM,
        cluster.num_devices(),
        &mut rng,
    );
    let restored = checkpoint::load(&mut recipient.store, &mut buf.as_slice()).expect("load");
    // Same architecture → every named parameter matches.
    assert_eq!(restored, donor.store.len());
    let donor_probs = donor.policy_probs(&input);
    let recipient_probs = recipient.policy_probs(&input);
    assert!(donor_probs.max_abs_diff(&recipient_probs) < 1e-6);
}
