//! The `--fast-math` tier contract.
//!
//! Fast-math swaps libm transcendentals for polynomial kernels and may
//! reassociate, so it is *not* bit-comparable to the default tier. What
//! it must preserve:
//!
//! * gradients — backward rules still pass finite-difference checks
//!   (the approximations are smooth, so analytic and numeric derivatives
//!   of the *same* forward agree);
//! * placement quality — a policy trained under the default tier
//!   decodes to an equally good placement when read under fast-math;
//! * training health — a full train run under fast-math stays finite
//!   and finds a valid placement.
//!
//! The tier toggle is process-global, so all phases run inside one
//! `#[test]`, restoring the default tier between phases.

use mars::autograd::check::check_gradients_default;
use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{Cluster, SimEnv};
use mars::tensor::{init, kernel};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn tiny_cfg() -> MarsConfig {
    let mut c = MarsConfig::small();
    c.encoder_hidden = 16;
    c.placer_hidden = 16;
    c.attn_dim = 8;
    c.segment_size = 24;
    c.dgi_iters = 20;
    c
}

#[test]
fn fast_math_preserves_gradients_and_placement_quality() {
    // --- Phase 1: finite-difference gradient checks under fast-math.
    // The composite exercises every approximate kernel: sigmoid and
    // softmax (polynomial exp), tanh, and the fused LSTM + attention
    // paths that route through them.
    kernel::set_fast_math(true);
    let fd_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(11);
        let ins = vec![
            init::uniform(3, 4, 0.8, &mut rng),
            init::uniform(4, 5, 0.6, &mut rng),
            init::uniform(1, 5, 0.4, &mut rng),
        ];
        check_gradients_default(&ins, |t, v| {
            let y = t.matmul(v[0], v[1]);
            let z = t.add_bias(y, v[2]);
            let s = t.sigmoid(z);
            let sm = t.softmax_rows(s);
            let a = t.tanh(sm);
            t.mean_all(a)
        });

        let (t_len, in_dim, hd) = (3usize, 2usize, 2usize);
        let mut rng = StdRng::seed_from_u64(12);
        let lstm_ins = vec![
            init::uniform(t_len, in_dim, 0.8, &mut rng),
            init::uniform(in_dim, 4 * hd, 0.5, &mut rng),
            init::uniform(hd, 4 * hd, 0.5, &mut rng),
            init::uniform(1, 4 * hd, 0.3, &mut rng),
            init::uniform(1, hd, 0.5, &mut rng),
            init::uniform(1, hd, 0.5, &mut rng),
        ];
        check_gradients_default(&lstm_ins, move |t, v| {
            let out = t.lstm_seq(v[0], v[1], v[2], v[3], v[4], v[5]);
            let h_rows = t.slice_rows(out, 0, t_len);
            t.mean_all(h_rows)
        });
    }));
    kernel::set_fast_math(false);
    fd_result.expect("fast-math gradient checks failed");

    // --- Phase 2: placement-quality equivalence. Train under the
    // default tier, then greedy-decode the trained policy under both
    // tiers: the simulated step times must agree (the ~1e-7 relative
    // exp error cannot be allowed to change what the policy *does*).
    let graph = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(42);
    let mut agent =
        Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, cluster.num_devices(), &mut rng);
    agent.pretrain(&input, &mut rng).expect("pretrains");
    let mut env = SimEnv::new(graph.clone(), cluster.clone(), 42);
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, 48, &mut rng, &mut log);

    let p_default = agent.greedy_placement(&input);
    kernel::set_fast_math(true);
    let decode =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| agent.greedy_placement(&input)));
    kernel::set_fast_math(false);
    let p_fast = decode.expect("fast-math decode panicked");

    let time = |p: &mars::sim::Placement| {
        let mut q = p.clone();
        q.enforce_compatibility(&graph, &cluster);
        env.true_step_time(&q).map(|r| r.makespan_s)
    };
    let (t_default, t_fast) = (time(&p_default), time(&p_fast));
    match (t_default, t_fast) {
        (Ok(a), Ok(b)) => {
            let rel = (a - b).abs() / a.max(b);
            assert!(
                rel < 0.05,
                "fast-math decode changed placement quality: {a:.4} vs {b:.4} s/step"
            );
        }
        (a, b) => panic!("decoded placements must both simulate: {a:?} vs {b:?}"),
    }

    // --- Phase 3: training under fast-math stays healthy end to end.
    kernel::set_fast_math(true);
    let train_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut agent =
            Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, cluster.num_devices(), &mut rng);
        let report = agent.pretrain(&input, &mut rng).expect("pretrains");
        assert!(
            report.losses.iter().all(|l| l.is_finite()),
            "fast-math DGI losses must stay finite"
        );
        let mut env = SimEnv::new(graph.clone(), cluster.clone(), 7);
        let mut log = TrainingLog::default();
        agent.train(&mut env, &input, 48, &mut rng, &mut log);
        assert!(log.best_reading_s.is_some(), "fast-math training must find a valid placement");
        assert!(
            log.records.iter().all(|r| r.policy_entropy.is_finite()),
            "fast-math policy entropy must stay finite"
        );
    }));
    kernel::set_fast_math(false);
    train_result.expect("fast-math training smoke failed");
}
