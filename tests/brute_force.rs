//! Cross-validation of the simulator and search against exhaustive
//! enumeration on small graphs.

use mars::graph::{shape, GraphBuilder, OpKind};
use mars::sim::{simulate, Cluster, DeviceSpec, LinkSpec, Placement};

/// A 6-op diamond graph with one heavy branch.
fn diamond() -> mars::graph::CompGraph {
    let mut b = GraphBuilder::new("diamond");
    let src = b.compute(OpKind::Input, "src", shape![1024, 64], 1e8, &[]);
    let heavy1 = b.compute(OpKind::MatMul, "heavy1", shape![1024, 64], 8e9, &[src]);
    let heavy2 = b.compute(OpKind::MatMul, "heavy2", shape![1024, 64], 8e9, &[heavy1]);
    let light1 = b.compute(OpKind::Relu, "light1", shape![1024, 64], 4e9, &[src]);
    let light2 = b.compute(OpKind::Relu, "light2", shape![1024, 64], 4e9, &[light1]);
    b.compute(OpKind::Add, "sink", shape![1024, 64], 1e7, &[heavy2, light2]);
    b.build()
}

fn two_gpu_cluster() -> Cluster {
    Cluster::new(vec![DeviceSpec::p100(0), DeviceSpec::p100(1)], LinkSpec::pcie())
}

fn brute_force_best(graph: &mars::graph::CompGraph, cluster: &Cluster) -> (Placement, f64) {
    let n = graph.num_nodes();
    let d = cluster.num_devices();
    let mut best = (Placement(vec![0; n]), f64::INFINITY);
    let total = d.pow(n as u32);
    for code in 0..total {
        let mut c = code;
        let mut assign = Vec::with_capacity(n);
        for _ in 0..n {
            assign.push(c % d);
            c /= d;
        }
        let p = Placement(assign);
        let t = simulate(graph, &p, cluster).makespan_s;
        if t < best.1 {
            best = (p, t);
        }
    }
    best
}

#[test]
fn brute_force_optimum_splits_the_branches() {
    let g = diamond();
    let c = two_gpu_cluster();
    let (best, t_best) = brute_force_best(&g, &c);

    // The optimum must be at least as good as both trivial placements.
    let t_single = simulate(&g, &Placement::all_on(&g, 0), &c).makespan_s;
    assert!(t_best <= t_single + 1e-12);

    // With two independent branches of heavy compute and cheap
    // communication, the optimum parallelizes: it uses both devices.
    assert_eq!(best.devices_used().len(), 2, "optimum should split branches: {best:?}");
    assert!(t_best < 0.75 * t_single, "parallel optimum {t_best} vs single-device {t_single}");
}

#[test]
fn brute_force_optimum_colocates_when_comm_dominates() {
    // Same structure, but make tensors enormous and compute tiny: the
    // optimum must collapse onto a single device.
    let mut b = GraphBuilder::new("comm-bound");
    let src = b.compute(OpKind::Input, "src", shape![16384, 1024], 1e6, &[]);
    let a1 = b.compute(OpKind::Relu, "a1", shape![16384, 1024], 1e6, &[src]);
    let a2 = b.compute(OpKind::Relu, "a2", shape![16384, 1024], 1e6, &[src]);
    b.compute(OpKind::Add, "sink", shape![16384, 1024], 1e6, &[a1, a2]);
    let g = b.build();
    let c = two_gpu_cluster();
    let (best, _) = brute_force_best(&g, &c);
    assert_eq!(best.devices_used().len(), 1, "comm-bound optimum must colocate: {best:?}");
}

#[test]
fn exhaustive_search_confirms_simulator_bounds() {
    let g = diamond();
    let c = two_gpu_cluster();
    let serial: f64 = g.nodes().iter().map(|n| mars::sim::cost::op_time(n, c.device(0))).sum();
    let n = g.num_nodes();
    for code in 0..(2u32.pow(n as u32)) {
        let assign: Vec<usize> = (0..n).map(|i| ((code >> i) & 1) as usize).collect();
        let rep = simulate(&g, &Placement(assign), &c);
        // Makespan can never beat the critical path nor exceed the
        // fully-serial time plus all communication.
        let cp = g.critical_path_flops();
        let lb = cp / (c.device(0).peak_gflops * 1e9);
        assert!(rep.makespan_s >= lb);
        assert!(rep.makespan_s <= serial + rep.comm_s + 1e-9);
    }
}
