//! Bit-level reproducibility of the full pipeline: with the in-repo RNG
//! the entire run — DGI pre-training losses, PPO training trace, and
//! the final placement — must be byte-identical across same-seed runs,
//! and must diverge across seeds.

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::config::MarsConfig;
use mars::core::workload_input::WorkloadInput;
use mars::graph::features::FEATURE_DIM;
use mars::graph::generators::{Profile, Workload};
use mars::sim::{Cluster, SimEnv};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;

fn tiny_cfg() -> MarsConfig {
    let mut c = MarsConfig::small();
    c.encoder_hidden = 16;
    c.placer_hidden = 16;
    c.attn_dim = 8;
    c.segment_size = 24;
    c.dgi_iters = 20;
    c
}

/// Run DGI pre-training + PPO and return the pretrain loss curve and
/// the training log. `eval_threads`/`eval_cache` configure the rollout
/// engine — they must never change anything this function returns.
fn run_with_engine(
    seed: u64,
    samples: usize,
    eval_threads: usize,
    eval_cache: bool,
) -> (Vec<f32>, TrainingLog) {
    let graph = Workload::InceptionV3.build(Profile::Reduced);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent =
        Agent::new(AgentKind::Mars, tiny_cfg(), FEATURE_DIM, cluster.num_devices(), &mut rng);
    let report = agent.pretrain(&input, &mut rng).expect("Mars agent pre-trains");
    let mut env = SimEnv::new(graph, cluster, seed);
    env.set_eval_threads(eval_threads);
    env.set_cache_enabled(eval_cache);
    let mut log = TrainingLog::default();
    agent.train(&mut env, &input, samples, &mut rng, &mut log);
    (report.losses, log)
}

fn run(seed: u64, samples: usize) -> (Vec<f32>, TrainingLog) {
    run_with_engine(seed, samples, 1, true)
}

/// The deterministic portion of a training trace, with floats reduced
/// to their bit patterns so equality is exact (wall-clock fields are
/// intentionally excluded).
/// One record's observable bits: (round, best, last, reward, entropy, loss).
type TraceRow = (usize, Option<u64>, Option<u64>, u64, u64, u64);

fn trace_bits(log: &TrainingLog) -> Vec<TraceRow> {
    log.records
        .iter()
        .map(|r| {
            (
                r.samples_so_far,
                r.mean_valid_reading_s.map(f64::to_bits),
                r.best_so_far_s.map(f64::to_bits),
                r.valid_fraction.to_bits(),
                r.machine_s.to_bits(),
                r.policy_entropy.to_bits(),
            )
        })
        .collect()
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let (losses_a, log_a) = run(42, 48);
    let (losses_b, log_b) = run(42, 48);

    // DGI pre-training loss curve, bit for bit.
    assert_eq!(losses_a.len(), losses_b.len());
    for (i, (a, b)) in losses_a.iter().zip(&losses_b).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "DGI loss diverged at iter {i}: {a} vs {b}");
    }

    // PPO trace, bit for bit.
    assert_eq!(trace_bits(&log_a), trace_bits(&log_b));
    assert_eq!(log_a.total_samples, log_b.total_samples);

    // Final placement and its reading.
    assert_eq!(log_a.best_placement, log_b.best_placement);
    assert_eq!(log_a.best_reading_s.map(f64::to_bits), log_b.best_reading_s.map(f64::to_bits));
}

#[test]
fn parallel_eval_is_bit_identical_to_serial() {
    // The rollout engine (evaluation threads, memo cache) may change
    // wall-clock only: every combination must reproduce the serial
    // no-cache trace bit for bit, including simulated machine time.
    let (losses_ref, log_ref) = run_with_engine(42, 48, 1, false);
    for (threads, cache) in [(4, false), (1, true), (4, true)] {
        let (losses, log) = run_with_engine(42, 48, threads, cache);
        assert_eq!(
            losses_ref.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "DGI losses diverged with threads={threads} cache={cache}"
        );
        assert_eq!(
            trace_bits(&log_ref),
            trace_bits(&log),
            "training trace diverged with threads={threads} cache={cache}"
        );
        assert_eq!(log_ref.best_placement, log.best_placement);
        assert_eq!(log_ref.best_reading_s.map(f64::to_bits), log.best_reading_s.map(f64::to_bits));
    }
}

#[test]
fn scalar_and_dispatched_backends_produce_identical_traces() {
    // The SIMD dispatch seam must be invisible in the bits: a full
    // pretrain + PPO run under the forced scalar backend reproduces the
    // auto-dispatched trace exactly (the default tier's core claim —
    // lanes change how many elements one instruction touches, never the
    // per-element operation sequence).
    use mars_tensor::kernel::{self, Backend};
    let (losses_auto, log_auto) = run(42, 48);
    kernel::set_backend_override(Some(Backend::Scalar));
    let scalar_run = std::panic::catch_unwind(|| run(42, 48));
    kernel::set_backend_override(None);
    let (losses_scalar, log_scalar) = scalar_run.expect("scalar-backend run panicked");

    assert_eq!(
        losses_auto.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        losses_scalar.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "DGI losses diverged between scalar and dispatched backends"
    );
    assert_eq!(
        trace_bits(&log_auto),
        trace_bits(&log_scalar),
        "training trace diverged between scalar and dispatched backends"
    );
    assert_eq!(log_auto.best_placement, log_scalar.best_placement);
    assert_eq!(
        log_auto.best_reading_s.map(f64::to_bits),
        log_scalar.best_reading_s.map(f64::to_bits)
    );
}

#[test]
fn different_seeds_diverge() {
    let (losses_a, log_a) = run(42, 48);
    let (losses_c, log_c) = run(43, 48);

    // Different seeds must produce different random initializations,
    // so the very first DGI loss already differs.
    assert_ne!(
        losses_a.first().map(|l| l.to_bits()),
        losses_c.first().map(|l| l.to_bits()),
        "different seeds produced identical initial DGI loss"
    );
    assert_ne!(
        trace_bits(&log_a),
        trace_bits(&log_c),
        "different seeds produced identical training traces"
    );
}
