#![warn(missing_docs)]
//! Facade crate re-exporting the whole Mars reproduction stack.
pub use mars_autograd as autograd;
pub use mars_core as core;
pub use mars_graph as graph;
pub use mars_json as json;
pub use mars_net as net;
pub use mars_nn as nn;
pub use mars_rng as rng;
pub use mars_serve as serve;
pub use mars_sim as sim;
pub use mars_telemetry as telemetry;
pub use mars_tensor as tensor;

pub mod cli;
pub mod plot;
