//! Minimal SVG line-chart writer for experiment curves (Fig. 7).
//!
//! Hand-rolled — no plotting dependency — producing self-contained SVG
//! with axes, tick labels, legend and one polyline per series. See the
//! `plot_fig7` example for converting `fig7_curves.json` into the
//! paper-figure layout.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (gaps are allowed by splitting into several series).
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Clone, Debug)]
pub struct ChartConfig {
    /// Title rendered above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Logarithmic y-axis.
    pub log_y: bool,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            x_label: "x".into(),
            y_label: "y".into(),
            width: 640,
            height: 400,
            log_y: false,
        }
    }
}

const COLORS: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"];
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) || n == 0 {
        return vec![lo];
    }
    let raw_step = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = mag
        * if norm < 1.5 {
            1.0
        } else if norm < 3.0 {
            2.0
        } else if norm < 7.0 {
            5.0
        } else {
            10.0
        };
    let start = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

/// Render series as an SVG string.
///
/// # Panics
/// If no series contains any point.
pub fn render(config: &ChartConfig, series: &[Series]) -> String {
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    assert!(!all.is_empty(), "render() needs at least one data point");

    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if config.log_y {
        y_lo = y_lo.max(1e-12).log10();
        y_hi = y_hi.max(1e-12).log10();
    }
    if (y_hi - y_lo).abs() < 1e-12 {
        y_hi = y_lo + 1.0;
    }
    if (x_hi - x_lo).abs() < 1e-12 {
        x_hi = x_lo + 1.0;
    }

    let w = config.width as f64;
    let h = config.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let sx = move |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w;
    let sy = move |y: f64| {
        let yv = if config.log_y { y.max(1e-12).log10() } else { y };
        MARGIN_T + plot_h - (yv - y_lo) / (y_hi - y_lo) * plot_h
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" font-family="sans-serif" font-size="11">"#,
        config.width, config.height
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
        w / 2.0,
        config.title
    );

    // Axes.
    let _ = writeln!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h,
        w - MARGIN_R,
        MARGIN_T + plot_h
    );
    let _ = writeln!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h
    );

    // Ticks.
    for t in nice_ticks(x_lo, x_hi, 6) {
        let x = sx(t);
        let _ = writeln!(
            svg,
            r#"<line x1="{x}" y1="{}" x2="{x}" y2="{}" stroke="black"/><text x="{x}" y="{}" text-anchor="middle">{t:.0}</text>"#,
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 4.0,
            MARGIN_T + plot_h + 18.0
        );
    }
    let y_ticks = if config.log_y {
        nice_ticks(y_lo, y_hi, 5).into_iter().map(|t| 10f64.powf(t)).collect::<Vec<_>>()
    } else {
        nice_ticks(y_lo, y_hi, 5)
    };
    for t in y_ticks {
        let y = sy(t);
        let label =
            if t.abs() >= 100.0 || t == t.floor() { format!("{t:.0}") } else { format!("{t:.2}") };
        let _ = writeln!(
            svg,
            r#"<line x1="{}" y1="{y}" x2="{MARGIN_L}" y2="{y}" stroke="black"/><text x="{}" y="{}" text-anchor="end">{label}</text>"#,
            MARGIN_L - 4.0,
            MARGIN_L - 8.0,
            y + 4.0
        );
    }

    // Axis labels.
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 10.0,
        config.x_label
    );
    let _ = writeln!(
        svg,
        r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        config.y_label
    );

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let path: Vec<String> =
            s.points.iter().map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y))).collect();
        if path.len() > 1 {
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                path.join(" ")
            );
        }
        for &(x, y) in &s.points {
            let _ = writeln!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2" fill="{color}"/>"#,
                sx(x),
                sy(y)
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 14.0 * i as f64 + 6.0;
        let _ = writeln!(
            svg,
            r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}">{}</text>"#,
            w - MARGIN_R - 150.0,
            w - MARGIN_R - 130.0,
            w - MARGIN_R - 125.0,
            ly + 4.0,
            s.label
        );
    }

    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                label: "a".into(),
                points: (0..10).map(|i| (i as f64, (i as f64).sin() + 2.0)).collect(),
            },
            Series { label: "b".into(), points: vec![(0.0, 1.0), (9.0, 3.0)] },
        ]
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = render(&ChartConfig::default(), &demo_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("circle"));
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn log_scale_renders() {
        let cfg = ChartConfig { log_y: true, ..ChartConfig::default() };
        let series = vec![Series {
            label: "exp".into(),
            points: (1..6).map(|i| (i as f64, 10f64.powi(i))).collect(),
        }];
        let svg = render(&cfg, &series);
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn nice_ticks_are_round() {
        let t = nice_ticks(0.0, 100.0, 5);
        assert!(t.contains(&0.0) || t.contains(&20.0));
        for w in t.windows(2) {
            assert!((w[1] - w[0] - (t[1] - t[0])).abs() < 1e-9, "uneven ticks {t:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one data point")]
    fn empty_input_panics() {
        let _ = render(&ChartConfig::default(), &[]);
    }
}
