//! `mars-cli` — command-line interface to the Mars reproduction.
//!
//! ```text
//! mars-cli inspect  <workload>                      graph stats + memory + baselines
//! mars-cli train    <workload> [options]            train an agent, print summary
//! mars-cli pretrain <workload> [options]            DGI contrastive pre-training only
//! mars-cli trace    <workload> --placement <name>   ASCII Gantt of one placement
//! mars-cli dot      <workload> [--max-nodes N]      Graphviz export to stdout
//! mars-cli evaluate <workload> --placement <name>   measure one placement
//! mars-cli metrics summarize <run.jsonl>            render a telemetry capture
//! mars-cli metrics tail <run.jsonl> [options]       one line per record, live with --follow
//! mars-cli metrics flame <run.jsonl>                collapsed stacks for flamegraph tools
//! mars-cli bench-gate --current <b.json> [options]  compare a bench run to baseline
//! mars-cli serve --listen ADDR [options]            placement-as-a-service daemon
//! mars-cli place <workload> --connect ADDR [opts]   query a running serve daemon
//!
//! workloads:  inception | gnmt | bert | vgg | seq2seq | transformer
//! placements: human | gpu-only | rr2 | rr4 | blocked2 | blocked3 | blocked4 | mincut
//! train options: --agent mars|mars-nopre|grouper|encoder   --budget N
//!                --seed N   --profile small|full   --save <ckpt-path>
//!                --telemetry <run.jsonl>   --dgi-iters N
//!                --encode-batch N   (DGI corpus batching; N >= 2 packs
//!                 the clean and corrupted graphs into one block-diagonal
//!                 encoder pass — bit-identical trace, less overhead)
//!                --eval-threads N   --no-eval-cache   --fast-math
//!                --fault-plan <spec>   --max-eval-retries N
//!                --eval-timeout-s S    --auto-checkpoint <ckpt-path>
//!                (--fast-math opts into approximate transcendentals;
//!                 also honored by pretrain and evaluate. The kernel
//!                 backend is picked by the MARS_KERNEL env var:
//!                 scalar | simd | auto — see DESIGN.md)
//! fleet options: --workers N            spawn N local rollout workers
//!                --workers N --listen ADDR   wait for N external workers
//!                --connect ADDR         run as a rollout worker
//!                (ADDR is host:port or unix:<path>; worker count
//!                 never changes the training trace — see DESIGN.md)
//! metrics tail:  --lines N (default 20, 0 = all)   --follow
//! bench-gate:    --current <e2e.json>     --baseline <e2e.json>
//!                --kernels <kernels.json> --kernels-baseline <kernels.json>
//!                --serve <serve.json>     --serve-baseline <serve.json>
//!                --min-ratio R (default 0.5)
//!                --min-kernel-ratio R (default 0.5)
//!                --min-serve-ratio R (default 0.5)
//!                --only <prefix>   gate only kernels matching prefix
//! serve options: --listen ADDR          bind (host:port or unix:<path>)
//!                --seed N   --checkpoint <ckpt>   --store <placements.jsonl>
//!                --cache-capacity N   --max-requests N   --devices N
//!                --profile small|full   --telemetry <run.jsonl>
//! place options: --connect ADDR   --top-k K   --repeat N   --shutdown
//!                --profile small|full   --fail-device N
//! ```
//!
//! `--telemetry <path>` records a JSONL event stream (per-iteration DGI
//! loss, per-update PPO diagnostics, per-evaluation simulator gauges,
//! and a span-tree profile of the hot kernels); inspect it afterwards
//! with `mars-cli metrics summarize <path>`. In a fleet run the same
//! file also carries each worker's shipped spans, counters, and health
//! heartbeats, so the summary covers the whole fleet. `metrics tail
//! --follow` renders records live as the run writes them (it exits
//! when the end-of-run summary records appear); `metrics flame` folds
//! span self-times into collapsed-stack lines (one process prefix per
//! learner/worker) ready for `flamegraph.pl` or inferno, and prints a
//! per-process kernel profile on stderr so stdout stays pipeable.
//!
//! `--fault-plan` injects deterministic failures into the simulated
//! cluster (see `mars_sim::FaultPlan::parse` for the grammar):
//! `fail:2@50` kills device 2 before evaluation 50, `transient:0.1`
//! draws background transient errors, `straggler:0.05x8` slows 5% of
//! evaluations 8×, `crash@100` crashes (and resumes) the agent. Same
//! seed + same plan reproduces the run bit for bit.

use mars::cli::{fail, Flags, FleetMode};
use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::baselines::{gpu_only, human_expert};
use mars::core::config::MarsConfig;
use mars::core::partitioner::best_min_cut;
use mars::core::workload_input::WorkloadInput;
use mars::graph::analysis::{stats, to_dot};
use mars::graph::generators::{Profile, Workload};
use mars::graph::CompGraph;
use mars::json::Json;
use mars::net::{
    recv_msg, send_msg, Addr, Conn, EnvSetup, FleetBackend, Listener, Msg, PROTOCOL_VERSION,
};
use mars::nn::checkpoint;
use mars::serve::{PlacementEngine, ServeOptions};
use mars::sim::{
    check_memory, simulate_traced, Cluster, Environment, EvalOutcome, FaultPlan, Placement, SimEnv,
};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use std::process::ExitCode;

fn named_placement(
    name: &str,
    workload: Workload,
    graph: &CompGraph,
    cluster: &Cluster,
) -> Option<Placement> {
    let mut p = match name {
        "human" => human_expert(workload, graph, cluster),
        "gpu-only" | "gpu" => gpu_only(graph, cluster),
        "rr2" => Placement::round_robin(graph, &cluster.gpu_ids()[..2]),
        "rr4" => Placement::round_robin(graph, &cluster.gpu_ids()),
        "blocked2" => Placement::blocked(graph, &cluster.gpu_ids()[..2]),
        "blocked3" => Placement::blocked(graph, &cluster.gpu_ids()[..3]),
        "blocked4" => Placement::blocked(graph, &cluster.gpu_ids()),
        "mincut" => return best_min_cut(graph, cluster),
        _ => return None,
    };
    p.enforce_compatibility(graph, cluster);
    Some(p)
}

fn cmd_inspect(workload: Workload, profile: Profile) -> Result<(), String> {
    let graph = workload.build(profile);
    let cluster = Cluster::p100_quad();
    let s = stats(&graph);
    println!("workload {}", graph.name);
    println!(
        "  nodes {}  edges {}  depth {}  max width {}",
        s.nodes, s.edges, s.depth, s.max_width
    );
    println!(
        "  training FLOPs {:.3e}  memory {:.2} GB  mean edge {:.2} MB",
        s.total_flops,
        s.total_memory_bytes as f64 / (1u64 << 30) as f64,
        s.mean_edge_bytes / (1 << 20) as f64
    );
    println!("  op kinds:");
    for (kind, count) in s.kind_histogram.iter().take(8) {
        println!("    {kind:?}: {count}");
    }
    println!("  baselines on 4×P100 + CPU:");
    let env = SimEnv::new(graph.clone(), cluster.clone(), 0);
    for name in ["human", "gpu-only", "rr4", "blocked3", "mincut"] {
        let Some(p) = named_placement(name, workload, &graph, &cluster) else {
            println!("    {name:<9} (unavailable)");
            continue;
        };
        match env.true_step_time(&p) {
            Ok(rep) => println!(
                "    {name:<9} {:8.3} s/step  (comm {:.3} s, {} transfers)",
                rep.makespan_s, rep.comm_s, rep.num_transfers
            ),
            Err(e) => println!("    {name:<9} {e}"),
        }
    }
    Ok(())
}

/// Install a JSONL recorder when `--telemetry <path>` was given.
/// Returns the path so the caller can report where the capture went.
fn install_telemetry(flags: &Flags) -> Result<Option<String>, String> {
    let Some(path) = flags.string_opt("telemetry")? else { return Ok(None) };
    mars::telemetry::install_file(&path)
        .map_err(|e| format!("cannot open telemetry sink '{path}': {e}"))?;
    Ok(Some(path))
}

fn finish_telemetry(path: Option<String>) {
    if let Some(path) = path {
        mars::telemetry::uninstall();
        println!("telemetry written to {path} (mars-cli metrics summarize {path})");
    }
}

/// Resolve `--profile`, `--dgi-iters`, and the resilience flags
/// (`--max-eval-retries`, `--eval-timeout-s`, `--auto-checkpoint`)
/// into a [`MarsConfig`]. Shared by `train` and `pretrain`.
fn config_from_flags(flags: &Flags) -> Result<MarsConfig, String> {
    let mut cfg = match flags.one_of("profile", &["small", "full", "paper"], "small")? {
        "full" | "paper" => MarsConfig::paper(),
        _ => MarsConfig::small(),
    };
    if let Some(iters) = flags.parsed_opt("dgi-iters")? {
        cfg.dgi_iters = iters;
    }
    if let Some(threads) = flags.parsed_opt("eval-threads")? {
        if threads == 0 {
            return Err("invalid value '0' for --eval-threads (need at least 1)".into());
        }
        cfg.eval_threads = threads;
    }
    if let Some(batch) = flags.parsed_opt("encode-batch")? {
        if batch == 0 {
            return Err("invalid value '0' for --encode-batch (need at least 1)".into());
        }
        cfg.encode_batch = batch;
    }
    if flags.switch("no-eval-cache")? {
        cfg.eval_cache = false;
    }
    cfg.max_eval_retries = flags.parsed("max-eval-retries", cfg.max_eval_retries)?;
    cfg.eval_timeout_s = flags.parsed("eval-timeout-s", cfg.eval_timeout_s)?;
    if cfg.eval_timeout_s <= 0.0 {
        return Err(format!(
            "invalid value '{}' for --eval-timeout-s (must be positive)",
            cfg.eval_timeout_s
        ));
    }
    cfg.auto_checkpoint = flags.string_opt("auto-checkpoint")?;
    if flags.switch("fast-math")? {
        // Process-global engine tier: polynomial exp in softmax/sigmoid
        // and reassociation-permitted kernels. Changes the bit trace
        // (that is the point), so it is strictly opt-in.
        mars::tensor::kernel::set_fast_math(true);
        println!("fast-math tier enabled (approximate transcendentals; not bit-comparable to default-tier runs)");
    }
    Ok(cfg)
}

/// Parse and validate `--fault-plan` against the cluster, then install
/// it (and the retry/timeout knobs from `cfg`) on the environment.
fn arm_environment(env: &mut SimEnv, cfg: &MarsConfig, flags: &Flags) -> Result<(), String> {
    env.set_eval_threads(cfg.eval_threads);
    env.set_cache_enabled(cfg.eval_cache);
    env.retry.max_retries = cfg.max_eval_retries;
    env.eval_timeout_s = cfg.eval_timeout_s;
    if let Some(spec) = flags.string_opt("fault-plan")? {
        let plan =
            FaultPlan::parse(&spec).map_err(|e| format!("invalid value for --fault-plan: {e}"))?;
        env.set_fault_plan(plan).map_err(|e| format!("invalid value for --fault-plan: {e}"))?;
        println!("fault plan armed: {spec}");
    }
    Ok(())
}

/// Build the fleet handshake payload describing `env`, and install the
/// matching [`FleetBackend`] for `Spawn`/`Listen` modes. Workers
/// rebuild the environment from this setup, so it must be assembled
/// *after* `arm_environment` finalized the measurement knobs.
fn install_fleet(
    env: &mut SimEnv,
    mode: &FleetMode,
    workload: Workload,
    profile: Profile,
    flags: &Flags,
) -> Result<(), String> {
    let setup = EnvSetup {
        workload: workload.name().into(),
        profile: profile.name().into(),
        seed: env.seed(),
        fault_plan: flags.string_opt("fault-plan")?.unwrap_or_default(),
        bad_cutoff_s: env.bad_cutoff_s,
        invalid_penalty_s: env.invalid_penalty_s,
        noise_sigma: env.noise_sigma,
        steps_per_eval: env.steps_per_eval,
        warmup_steps: env.warmup_steps,
    };
    let backend = match mode {
        FleetMode::InProcess | FleetMode::Connect { .. } => return Ok(()),
        FleetMode::Spawn { workers } => {
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot locate the worker executable: {e}"))?;
            FleetBackend::spawn(*workers, &setup, &exe, &["train", workload.name()])?
        }
        FleetMode::Listen { workers, addr } => {
            println!("fleet: waiting for {workers} worker(s) on {addr}…");
            FleetBackend::listen(addr, *workers, &setup)?
        }
    };
    println!("fleet: {} worker(s) connected over {}", backend.num_workers(), backend.transport());
    env.set_backend(Some(Box::new(backend)));
    Ok(())
}

fn cmd_train(workload: Workload, profile: Profile, flags: &Flags) -> Result<(), String> {
    let fleet_mode = FleetMode::from_flags(flags)?;
    if let FleetMode::Connect { addr } = &fleet_mode {
        // Worker process: serve the learner at `addr` until it hangs
        // up. Everything else on the command line is the learner's
        // business — the environment arrives in the Welcome handshake.
        return mars::net::worker::run(addr);
    }
    let kind = match flags.one_of("agent", &["mars", "mars-nopre", "grouper", "encoder"], "mars")? {
        "mars-nopre" => AgentKind::MarsNoPretrain,
        "grouper" => AgentKind::GrouperPlacer,
        "encoder" => AgentKind::EncoderPlacer,
        _ => AgentKind::Mars,
    };
    let budget: usize = flags.parsed("budget", 400)?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let mut cfg = config_from_flags(flags)?;
    cfg.workers = fleet_mode.workers();
    let telemetry = install_telemetry(flags)?;

    let graph = workload.build(profile);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent =
        Agent::new(kind, cfg, mars::graph::features::FEATURE_DIM, cluster.num_devices(), &mut rng);
    if kind == AgentKind::Mars {
        println!("DGI pre-training…");
        if let Some(report) = agent.pretrain(&input, &mut rng) {
            println!("  loss {:.4} → {:.4}", report.losses[0], report.best_loss);
        }
    }
    let mut env = SimEnv::new(graph, cluster, seed);
    arm_environment(&mut env, &agent.cfg, flags)?;
    install_fleet(&mut env, &fleet_mode, workload, profile, flags)?;
    let mut log = TrainingLog::default();
    println!(
        "training {} on {} for {budget} placement evaluations…",
        kind.label(),
        workload.name()
    );
    agent.train(&mut env, &input, budget, &mut rng, &mut log);
    // Shut the fleet down (workers get Shutdown, children are reaped)
    // before the summary prints, so worker stderr cannot interleave.
    env.set_backend(None);
    match log.best_reading_s {
        Some(best) => {
            let p = log.best_placement.as_ref().expect("placement recorded");
            println!(
                "best {best:.3} s/step on devices {:?} after {} samples \
                 ({:.1} simulated machine-hours)",
                p.devices_used(),
                log.total_samples,
                log.machine_s / 3600.0
            );
        }
        None => println!("no valid placement found in {} samples", log.total_samples),
    }
    if env.cluster().has_failures() {
        println!("cluster degraded: failed devices {:?}", env.cluster().failed_ids());
    }
    if let Some((hits, misses, evictions)) = env.cache_stats() {
        let total = hits + misses;
        println!(
            "eval cache: {hits}/{total} hits ({:.1}%), {evictions} evictions",
            env.cache_hit_rate().unwrap_or(0.0) * 100.0
        );
    }
    if let Some(path) = flags.string_opt("save")? {
        checkpoint::save_file(&agent.store, &path)
            .map_err(|e| format!("checkpoint save failed: {e}"))?;
        println!("checkpoint written to {path}");
    }
    finish_telemetry(telemetry);
    Ok(())
}

fn cmd_pretrain(workload: Workload, profile: Profile, flags: &Flags) -> Result<(), String> {
    let seed: u64 = flags.parsed("seed", 42)?;
    let cfg = config_from_flags(flags)?;
    let telemetry = install_telemetry(flags)?;
    let graph = workload.build(profile);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let iters = cfg.dgi_iters;
    let mut agent = Agent::new(
        AgentKind::Mars,
        cfg,
        mars::graph::features::FEATURE_DIM,
        cluster.num_devices(),
        &mut rng,
    );
    println!("DGI pre-training on {} for {iters} iterations…", workload.name());
    match agent.pretrain(&input, &mut rng) {
        Some(report) => println!(
            "loss {:.4} → best {:.4} at iteration {}",
            report.losses[0], report.best_loss, report.best_iter
        ),
        None => eprintln!("agent has no pre-trainable encoder"),
    }
    if let Some(path) = flags.string_opt("save")? {
        checkpoint::save_file(&agent.store, &path)
            .map_err(|e| format!("checkpoint save failed: {e}"))?;
        println!("checkpoint written to {path}");
    }
    finish_telemetry(telemetry);
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let usage = "usage: mars-cli metrics <summarize|tail|flame> <run.jsonl> \
                 [--lines N] [--follow]";
    let (Some(sub), Some(path)) = (args.first(), args.get(1)) else { return Err(usage.into()) };
    match sub.as_str() {
        "summarize" => cmd_metrics_summarize(path),
        "tail" => cmd_metrics_tail(path, &Flags::parse(&args[2..])),
        "flame" => cmd_metrics_flame(path),
        other => Err(format!(
            "unknown metrics subcommand '{other}' (expected summarize, tail, or flame)"
        )),
    }
}

fn load_summary(path: &str) -> Result<mars::telemetry::RunSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    mars::telemetry::summarize(&text).map_err(|e| format!("cannot summarize '{path}': {e}"))
}

fn cmd_metrics_summarize(path: &str) -> Result<(), String> {
    let summary = load_summary(path)?;
    print!("{}", summary.render());
    let kernel_share = summary.self_time_fraction(&["tensor.", "nn.", "autograd."]);
    if kernel_share > 0.0 {
        println!("kernel self-time share (tensor/nn/autograd): {:.1}%", kernel_share * 100.0);
    }
    if let Some(report) = summary.rollout_report() {
        print!("{}", report.render());
    }
    if let Some(report) = summary.fault_report() {
        print!("{}", report.render());
    }
    if let Some(report) = summary.fleet_report() {
        print!("{}", report.render());
    }
    Ok(())
}

/// Fold span self-times into collapsed-stack lines
/// (`process;frame;frame value`), the input format of `flamegraph.pl`
/// and inferno. Stacks go to stdout (pipeable); the per-process
/// kernel profile goes to stderr.
fn cmd_metrics_flame(path: &str) -> Result<(), String> {
    let summary = load_summary(path)?;
    let stacks = summary.collapsed_stacks();
    if stacks.is_empty() {
        return Err(format!(
            "'{path}' has no span data to fold (was the run recorded with --telemetry?)"
        ));
    }
    print!("{stacks}");
    for (process, rows) in summary.process_profiles() {
        let total: u64 = rows.iter().map(|(_, us)| *us).sum::<u64>().max(1);
        let top: Vec<String> = rows
            .iter()
            .take(5)
            .map(|(leaf, us)| format!("{leaf} {:.1}%", *us as f64 * 100.0 / total as f64))
            .collect();
        eprintln!("{process}: {}", top.join(", "));
    }
    Ok(())
}

/// Render one line per record, oldest first. `--lines N` bounds the
/// initial backlog (0 = all); `--follow` then polls the file and
/// renders records as the run appends them, tolerating a torn final
/// line, until the end-of-run summary records appear.
fn cmd_metrics_tail(path: &str, flags: &Flags) -> Result<(), String> {
    let follow = flags.switch("follow")?;
    let backlog: usize = flags.parsed("lines", 20)?;
    let read = |from: u64| -> Result<String, String> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = std::fs::File::open(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        f.seek(SeekFrom::Start(from)).map_err(|e| format!("cannot seek '{path}': {e}"))?;
        let mut text = String::new();
        f.read_to_string(&mut text).map_err(|e| format!("cannot read '{path}': {e}"))?;
        Ok(text)
    };
    // Only consume up to the last newline: the writer flushes whole
    // lines, but we may race the OS mid-append.
    let complete_prefix = |text: &str| text.rfind('\n').map_or(0, |at| at + 1);

    let text = read(0)?;
    let mut consumed = complete_prefix(&text) as u64;
    let lines: Vec<&str> = text[..consumed as usize].lines().collect();
    let skip = if backlog == 0 { 0 } else { lines.len().saturating_sub(backlog) };
    let mut complete = false;
    for line in &lines[skip..] {
        complete |= print_tail_line(line);
    }
    if !follow || complete {
        return Ok(());
    }
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        let fresh = read(consumed)?;
        let upto = complete_prefix(&fresh);
        for line in fresh[..upto].lines() {
            if print_tail_line(line) {
                return Ok(());
            }
        }
        consumed += upto as u64;
    }
}

/// Print one record; `true` once the run is complete (the recorder
/// writes its `histograms` summary last, at uninstall).
fn print_tail_line(line: &str) -> bool {
    let Ok(j) = Json::parse(line) else { return false };
    println!("{}", mars::telemetry::summary::tail_line(&j));
    j.get("kind").and_then(Json::as_str) == Some("histograms")
}

/// One parsed bench-JSON file: its per-arm medians plus the aggregate
/// speedup (present in e2e baselines, absent in kernel baselines).
#[derive(Debug)]
struct BenchRun {
    speedup: Option<f64>,
    arms: Vec<(String, f64)>,
}

fn parse_bench_run(path: &str, text: &str) -> Result<BenchRun, String> {
    let json = Json::parse(text).map_err(|e| format!("cannot parse '{path}': {e}"))?;
    // An empty run is a broken run: a bench JSON that carries no
    // samples must fail the gate loudly, not pass it vacuously
    // (and certainly not panic on an index).
    let samples = match json.get("benchmarks").and_then(Json::as_array) {
        Some(samples) if !samples.is_empty() => samples,
        _ => {
            return Err(format!(
                "'{path}' has no benchmark samples (missing or empty 'benchmarks' array)"
            ))
        }
    };
    let arms = samples
        .iter()
        .map(|s| {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("'{path}' has a benchmark sample without a 'name'"))?;
            let median = s
                .get("median_ns")
                .and_then(Json::as_f64)
                .filter(|m| *m > 0.0)
                .ok_or_else(|| format!("'{path}': arm '{name}' has no positive 'median_ns'"))?;
            Ok((name.to_string(), median))
        })
        .collect::<Result<_, String>>()?;
    let speedup = json.get("speedup").and_then(Json::as_f64);
    Ok(BenchRun { speedup, arms })
}

/// Require the aggregate speedup of an e2e bench file.
fn require_speedup(run: &BenchRun, path: &str) -> Result<f64, String> {
    run.speedup.ok_or_else(|| format!("'{path}' has no numeric 'speedup' field"))
}

/// Per-arm regression ratios between two bench runs. Raw medians are
/// not comparable across runs (a smoke run uses fewer rounds than the
/// committed baseline), so each arm is first normalized to its own
/// file's serial arm — speedup(arm) = serial_median / arm_median —
/// and the ratio compares those speedups. Arms missing from either
/// file, and the serial arm itself (its ratio is 1 by construction),
/// are skipped.
fn bench_arm_ratios(current: &BenchRun, baseline: &BenchRun) -> Vec<(String, f64)> {
    let serial =
        |run: &BenchRun| run.arms.iter().find(|(name, _)| name.contains("serial")).map(|(_, m)| *m);
    let (Some(serial_cur), Some(serial_base)) = (serial(current), serial(baseline)) else {
        return Vec::new();
    };
    current
        .arms
        .iter()
        .filter(|(name, _)| !name.contains("serial"))
        .filter_map(|(name, median_cur)| {
            let (_, median_base) = baseline.arms.iter().find(|(n, _)| n == name)?;
            let ratio = (serial_cur / median_cur) / (serial_base / median_base);
            Some((name.clone(), ratio))
        })
        .collect()
}

/// Per-kernel regression ratios between two kernel-bench runs. Raw
/// medians are machine-dependent, so each kernel's raw improvement
/// `r = baseline_median / current_median` is normalized by the
/// geometric mean of all raw ratios: a uniformly faster or slower
/// machine moves every `r` by the same factor, which the geomean
/// divides back out, while a single regressed kernel falls below its
/// peers. Returns the normalized ratios plus the names present in only
/// one of the two files (compared nowhere, reported so coverage loss is
/// never silent).
fn bench_kernel_ratios(
    current: &BenchRun,
    baseline: &BenchRun,
) -> (Vec<(String, f64)>, Vec<String>) {
    let mut raw: Vec<(String, f64)> = Vec::new();
    let mut unmatched = Vec::new();
    for (name, cur) in &current.arms {
        match baseline.arms.iter().find(|(n, _)| n == name) {
            Some((_, base)) => raw.push((name.clone(), base / cur)),
            None => unmatched.push(format!("{name} (current only)")),
        }
    }
    for (name, _) in &baseline.arms {
        if !current.arms.iter().any(|(n, _)| n == name) {
            unmatched.push(format!("{name} (baseline only)"));
        }
    }
    if raw.is_empty() {
        return (raw, unmatched);
    }
    let geomean = (raw.iter().map(|(_, r)| r.ln()).sum::<f64>() / raw.len() as f64).exp();
    (raw.into_iter().map(|(n, r)| (n, r / geomean)).collect(), unmatched)
}

/// Restrict a run to the arms whose names start with `prefix`. Used by
/// `--only`: a partial bench run (one kernel family re-measured) gates
/// just that family, and baseline arms outside the prefix are dropped
/// *before* matching so they produce no "baseline only" noise.
fn filter_arms(run: &mut BenchRun, prefix: &str) {
    run.arms.retain(|(name, _)| name.starts_with(prefix));
}

/// One serve-bench file: open-loop load-generator results.
#[derive(Debug)]
struct ServeRun {
    throughput_rps: f64,
    p99_ns: f64,
}

fn parse_serve_run(path: &str, text: &str) -> Result<ServeRun, String> {
    let json = Json::parse(text).map_err(|e| format!("cannot parse '{path}': {e}"))?;
    let field = |name: &str| -> Result<f64, String> {
        json.get(name)
            .and_then(Json::as_f64)
            .filter(|v| *v > 0.0)
            .ok_or_else(|| format!("'{path}' has no positive '{name}' field"))
    };
    Ok(ServeRun { throughput_rps: field("throughput_rps")?, p99_ns: field("p99_ns")? })
}

/// Compare fresh benchmark JSONs against committed baselines and fail
/// on regression. Three independent gates:
///
/// * `--current <e2e.json>` — the aggregate rollout speedup
///   (threads+cache vs serial) and each arm's serial-normalized
///   speedup, both against `--min-ratio`.
/// * `--kernels <kernels.json>` — every microkernel's geomean-normalized
///   median against `--min-kernel-ratio`, so a failure names the
///   regressed kernel rather than a blended number. `--only <prefix>`
///   restricts the gate to one kernel family.
/// * `--serve <serve.json>` — the serve loop's throughput (floor) and
///   p99 latency (ceiling) against `--min-serve-ratio`.
fn cmd_bench_gate(flags: &Flags) -> Result<(), String> {
    let usage = "usage: mars-cli bench-gate [--current <e2e.json> [--baseline <e2e.json>]] \
                 [--kernels <kernels.json> [--kernels-baseline <kernels.json>] [--only <prefix>]] \
                 [--serve <serve.json> [--serve-baseline <serve.json>]]";
    let current_path = flags.string_opt("current")?;
    let kernels_path = flags.string_opt("kernels")?;
    let serve_path = flags.string_opt("serve")?;
    if current_path.is_none() && kernels_path.is_none() && serve_path.is_none() {
        return Err(usage.into());
    }
    let min_ratio: f64 = flags.parsed("min-ratio", 0.5)?;
    if !(0.0..=1.0).contains(&min_ratio) {
        return Err(format!("invalid value '{min_ratio}' for --min-ratio (expected 0..=1)"));
    }
    let min_kernel_ratio: f64 = flags.parsed("min-kernel-ratio", 0.5)?;
    if !(0.0..=1.0).contains(&min_kernel_ratio) {
        return Err(format!(
            "invalid value '{min_kernel_ratio}' for --min-kernel-ratio (expected 0..=1)"
        ));
    }
    let load = |path: &str| -> Result<BenchRun, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        parse_bench_run(path, &text)
    };

    if let Some(current_path) = current_path {
        let baseline_path =
            flags.string_opt("baseline")?.unwrap_or_else(|| "BENCH_e2e.json".to_string());
        let baseline = load(&baseline_path)?;
        let current = load(&current_path)?;
        let baseline_speedup = require_speedup(&baseline, &baseline_path)?;
        let current_speedup = require_speedup(&current, &current_path)?;
        if baseline_speedup <= 0.0 {
            return Err(format!(
                "baseline speedup {baseline_speedup} in '{baseline_path}' is not positive"
            ));
        }
        let ratio = current_speedup / baseline_speedup;
        println!(
            "bench gate: current speedup {current_speedup:.3} vs baseline {baseline_speedup:.3} \
             (ratio {ratio:.3}, floor {min_ratio:.3})"
        );
        for (arm, arm_ratio) in bench_arm_ratios(&current, &baseline) {
            println!("bench gate: arm '{arm}' serial-normalized ratio {arm_ratio:.3}");
            if arm_ratio < min_ratio {
                return Err(format!(
                    "benchmark regression in arm '{arm}': serial-normalized speedup ratio \
                     {arm_ratio:.3} fell below the {min_ratio:.3} floor"
                ));
            }
        }
        if ratio < min_ratio {
            return Err(format!(
                "benchmark regression: speedup ratio {ratio:.3} fell below the {min_ratio:.3} \
                 floor"
            ));
        }
    }

    if let Some(kernels_path) = kernels_path {
        let kernels_baseline_path = flags
            .string_opt("kernels-baseline")?
            .unwrap_or_else(|| "BENCH_kernels.json".to_string());
        let mut baseline = load(&kernels_baseline_path)?;
        let mut current = load(&kernels_path)?;
        if let Some(prefix) = flags.string_opt("only")? {
            filter_arms(&mut current, &prefix);
            filter_arms(&mut baseline, &prefix);
            if current.arms.is_empty() {
                return Err(format!(
                    "'{kernels_path}' has no kernel arms matching --only '{prefix}'"
                ));
            }
            println!("bench gate: --only '{prefix}' gates {} kernel arm(s)", current.arms.len());
        }
        let (ratios, unmatched) = bench_kernel_ratios(&current, &baseline);
        if ratios.is_empty() {
            return Err(format!(
                "'{kernels_path}' and '{kernels_baseline_path}' share no kernel names; \
                 nothing was gated"
            ));
        }
        for name in &unmatched {
            println!("bench gate: kernel {name} not compared");
        }
        for (kernel, ratio) in &ratios {
            println!("bench gate: kernel '{kernel}' normalized ratio {ratio:.3}");
        }
        if let Some((kernel, ratio)) =
            ratios.iter().filter(|(_, r)| *r < min_kernel_ratio).min_by(|a, b| a.1.total_cmp(&b.1))
        {
            return Err(format!(
                "benchmark regression in kernel '{kernel}': geomean-normalized median ratio \
                 {ratio:.3} fell below the {min_kernel_ratio:.3} floor"
            ));
        }
    }

    if let Some(serve_path) = serve_path {
        let serve_baseline_path =
            flags.string_opt("serve-baseline")?.unwrap_or_else(|| "BENCH_serve.json".to_string());
        let min_serve_ratio: f64 = flags.parsed("min-serve-ratio", 0.5)?;
        if !(0.0..=1.0).contains(&min_serve_ratio) {
            return Err(format!(
                "invalid value '{min_serve_ratio}' for --min-serve-ratio (expected 0..=1)"
            ));
        }
        let load_serve = |path: &str| -> Result<ServeRun, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            parse_serve_run(path, &text)
        };
        let baseline = load_serve(&serve_baseline_path)?;
        let current = load_serve(&serve_path)?;
        let throughput_ratio = current.throughput_rps / baseline.throughput_rps;
        // The latency gate is a ceiling, expressed as the same kind of
        // "bigger is better" ratio: p99 may grow at most 1/R.
        let p99_ratio = baseline.p99_ns / current.p99_ns;
        println!(
            "bench gate: serve throughput {:.0} rps vs baseline {:.0} \
             (ratio {throughput_ratio:.3}, floor {min_serve_ratio:.3})",
            current.throughput_rps, baseline.throughput_rps
        );
        println!(
            "bench gate: serve p99 {:.0} ns vs baseline {:.0} \
             (ratio {p99_ratio:.3}, floor {min_serve_ratio:.3})",
            current.p99_ns, baseline.p99_ns
        );
        if throughput_ratio < min_serve_ratio {
            return Err(format!(
                "benchmark regression in serve throughput: ratio {throughput_ratio:.3} fell \
                 below the {min_serve_ratio:.3} floor"
            ));
        }
        if p99_ratio < min_serve_ratio {
            return Err(format!(
                "benchmark regression in serve p99 latency: ratio {p99_ratio:.3} fell below \
                 the {min_serve_ratio:.3} floor"
            ));
        }
    }

    println!("bench gate passed");
    Ok(())
}

/// Run the placement-as-a-service daemon: build (or load) an agent,
/// wrap it in the tiered engine, and serve `PlaceRequest`s until a
/// client sends `Shutdown` (or `--max-requests` is reached).
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let usage = "usage: mars-cli serve --listen ADDR [--seed N] [--checkpoint <ckpt>] \
                 [--store <placements.jsonl>] [--cache-capacity N] [--max-requests N] \
                 [--devices N] [--profile small|full] [--telemetry <run.jsonl>]";
    let Some(listen) = flags.string_opt("listen")? else { return Err(usage.into()) };
    let addr = Addr::parse(&listen)?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let devices: usize = flags.parsed("devices", Cluster::p100_quad().num_devices())?;
    if devices == 0 {
        return Err("invalid value '0' for --devices (need at least 1)".into());
    }
    let capacity: usize = flags.parsed("cache-capacity", 256)?;
    if capacity == 0 {
        return Err("invalid value '0' for --cache-capacity (need at least 1)".into());
    }
    let cfg = config_from_flags(flags)?;
    let telemetry = install_telemetry(flags)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent =
        Agent::new(AgentKind::Mars, cfg, mars::graph::features::FEATURE_DIM, devices, &mut rng);
    if let Some(ckpt) = flags.string_opt("checkpoint")? {
        let n = checkpoint::load_file(&mut agent.store, &ckpt)
            .map_err(|e| format!("cannot load checkpoint '{ckpt}': {e}"))?;
        println!("loaded {n} parameters from {ckpt}");
    }
    let mut engine = PlacementEngine::new(agent, devices, capacity);
    if let Some(store) = flags.string_opt("store")? {
        let (loaded, skipped) = engine
            .attach_store(&store)
            .map_err(|e| format!("cannot open placement store '{store}': {e}"))?;
        println!("placement store {store}: {loaded} entries loaded, {skipped} skipped");
    }
    let max_requests = flags.parsed_opt("max-requests")?;
    let listener = Listener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "serving weights {:016x} on {addr} ({devices}-device policy, cache capacity {capacity})",
        engine.weights_fp()
    );
    let stats = mars::serve::serve(&listener, engine, ServeOptions { max_requests });
    println!(
        "serve loop done: {} connection(s), {} request(s) (hot {}, warm {}, cold {})",
        stats.connections, stats.requests, stats.engine.hot, stats.engine.warm, stats.engine.miss
    );
    finish_telemetry(telemetry);
    Ok(())
}

/// Query a running serve daemon and print the ranking. Output is
/// deterministic for fixed inputs — the CI smoke diffs two runs byte
/// for byte. `--repeat N` re-sends the same request and verifies every
/// response matches the first; `--shutdown` stops the daemon after.
fn cmd_place(workload: Workload, profile: Profile, flags: &Flags) -> Result<(), String> {
    let usage = "usage: mars-cli place <workload> --connect ADDR [--top-k K] [--repeat N] \
                 [--fail-device N] [--shutdown] [--profile small|full]";
    let Some(connect) = flags.string_opt("connect")? else { return Err(usage.into()) };
    let addr = Addr::parse(&connect)?;
    let top_k: usize = flags.parsed("top-k", 1)?;
    let repeat: u64 = flags.parsed("repeat", 1)?;
    if repeat == 0 {
        return Err("invalid value '0' for --repeat (need at least 1)".into());
    }
    let mut cluster = Cluster::p100_quad();
    if let Some(dead) = flags.parsed_opt::<usize>("fail-device")? {
        if dead >= cluster.num_devices() {
            return Err(format!(
                "invalid value '{dead}' for --fail-device (cluster has {})",
                cluster.num_devices()
            ));
        }
        cluster.fail_device(dead);
    }
    let mut conn = Conn::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    send_msg(&mut conn, &Msg::Hello { version: PROTOCOL_VERSION })?;
    match recv_msg(&mut conn)? {
        Some(Msg::Hello { .. }) => {}
        Some(Msg::Error { message }) => return Err(format!("server rejected us: {message}")),
        other => return Err(format!("unexpected handshake reply: {other:?}")),
    }
    let mut first: Option<(u64, u64, u64, Vec<Vec<usize>>)> = None;
    for unit in 0..repeat {
        let req = Msg::PlaceRequest {
            unit,
            workload: workload.name().into(),
            profile: profile.name().into(),
            cluster: cluster.clone(),
            top_k,
        };
        send_msg(&mut conn, &req)?;
        match recv_msg(&mut conn)? {
            Some(Msg::PlaceResponse { unit: u, graph_fp, cluster_fp, weights_fp, ranking }) => {
                if u != unit {
                    return Err(format!("response unit {u} does not match request {unit}"));
                }
                match &first {
                    None => {
                        println!(
                            "{}/{} on {} device(s): graph_fp={graph_fp:016x} \
                             cluster_fp={cluster_fp:016x} weights_fp={weights_fp:016x}",
                            workload.name(),
                            profile.name(),
                            cluster.num_devices()
                        );
                        for (op, row) in ranking.iter().enumerate() {
                            let devices: Vec<String> = row.iter().map(|d| d.to_string()).collect();
                            println!("op {op:>4}: {}", devices.join(" "));
                        }
                        first = Some((graph_fp, cluster_fp, weights_fp, ranking));
                    }
                    Some(f) => {
                        if *f != (graph_fp, cluster_fp, weights_fp, ranking) {
                            return Err(format!("response {unit} diverged from response 0"));
                        }
                        println!("response {unit} identical to response 0");
                    }
                }
            }
            Some(Msg::Error { message }) => return Err(format!("server error: {message}")),
            other => return Err(format!("unexpected response: {other:?}")),
        }
    }
    if flags.switch("shutdown")? {
        send_msg(&mut conn, &Msg::Shutdown)?;
        match recv_msg(&mut conn)? {
            Some(Msg::Shutdown) => println!("server shutting down"),
            other => return Err(format!("unexpected shutdown reply: {other:?}")),
        }
    }
    Ok(())
}

fn cmd_trace(workload: Workload, profile: Profile, flags: &Flags) -> Result<(), String> {
    let graph = workload.build(profile);
    let cluster = Cluster::p100_quad();
    let name = flags.get("placement").unwrap_or("blocked3");
    let Some(p) = named_placement(name, workload, &graph, &cluster) else {
        return Err(format!("unknown or infeasible placement '{name}'"));
    };
    check_memory(&graph, &p, &cluster).map_err(|e| format!("placement invalid: {e}"))?;
    let (report, trace) = simulate_traced(&graph, &p, &cluster);
    println!(
        "{} under '{name}': {:.3} s/step, comm {:.3} s, {} transfers",
        graph.name, report.makespan_s, report.comm_s, report.num_transfers
    );
    print!("{}", trace.ascii_gantt(cluster.num_devices(), 100));
    for d in 0..cluster.num_devices() {
        println!("dev{d} idle {:.0}%", trace.idle_fraction(d) * 100.0);
    }
    Ok(())
}

fn cmd_evaluate(workload: Workload, profile: Profile, flags: &Flags) -> Result<(), String> {
    let graph = workload.build(profile);
    let cluster = Cluster::p100_quad();
    let name = flags.get("placement").unwrap_or("gpu-only");
    let Some(p) = named_placement(name, workload, &graph, &cluster) else {
        return Err(format!("unknown placement '{name}'"));
    };
    let seed = flags.parsed("seed", 42u64)?;
    let mut env = SimEnv::new(graph, cluster, seed);
    let cfg = config_from_flags(flags)?;
    arm_environment(&mut env, &cfg, flags)?;
    match env.evaluate(&p) {
        EvalOutcome::Valid { per_step_s } => {
            println!("{per_step_s:.4} s/step (15-step protocol, 5 warm-up discarded)")
        }
        EvalOutcome::Bad { cutoff_s } => println!("aborted: exceeded {cutoff_s:.0} s cutoff"),
        EvalOutcome::Invalid { oom } => println!("invalid: {oom}"),
        EvalOutcome::TransientError { attempts, cutoff_s } => {
            println!("transient error: gave up after {attempts} attempts, read as {cutoff_s:.0} s")
        }
        EvalOutcome::Straggler { slowdown, cutoff_s } => {
            println!("straggler (×{slowdown}): aborted, read as {cutoff_s:.0} s")
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: mars-cli <inspect|train|pretrain|trace|dot|evaluate|place> <workload> [--flags]\n       mars-cli metrics summarize <run.jsonl>\n       mars-cli bench-gate --current <bench.json> [--baseline <bench.json>]\n       mars-cli serve --listen ADDR [--flags]\n(see --help in the module docs)";
    match args.first().map(String::as_str) {
        Some("metrics") => {
            return match cmd_metrics(&args[1..]) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(e),
            }
        }
        Some("bench-gate") => {
            return match cmd_bench_gate(&Flags::parse(&args[1..])) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(e),
            }
        }
        Some("serve") => {
            return match cmd_serve(&Flags::parse(&args[1..])) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(e),
            }
        }
        _ => {}
    }
    let (Some(cmd), Some(wname)) = (args.first(), args.get(1)) else {
        return fail(usage);
    };
    let Some(workload) = Workload::parse(wname) else {
        return fail(format!("unknown workload '{wname}'"));
    };
    let flags = Flags::parse(&args[2..]);
    let profile = match flags.one_of("profile", &["small", "full", "paper"], "small") {
        Ok("full") | Ok("paper") => Profile::Paper,
        Ok(_) => Profile::Reduced,
        Err(e) => return fail(e),
    };
    let result = match cmd.as_str() {
        "inspect" => cmd_inspect(workload, profile),
        "train" => cmd_train(workload, profile, &flags),
        "pretrain" => cmd_pretrain(workload, profile, &flags),
        "trace" => cmd_trace(workload, profile, &flags),
        "evaluate" => cmd_evaluate(workload, profile, &flags),
        "place" => cmd_place(workload, profile, &flags),
        "dot" => flags.parsed("max-nodes", usize::MAX).map(|max_nodes| {
            print!("{}", to_dot(&workload.build(profile), max_nodes));
        }),
        other => Err(format!("unknown command '{other}'\n{usage}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(serial_ns: f64, threads_ns: f64, fleet_ns: f64) -> String {
        format!(
            r#"{{"benchmarks":[
                {{"name":"rollout_e2e/serial_nocache","iters":6,"median_ns":{serial_ns}}},
                {{"name":"rollout_e2e/threads4_cache","iters":6,"median_ns":{threads_ns}}},
                {{"name":"rollout_e2e/fleet2_unix","iters":6,"median_ns":{fleet_ns}}}],
                "speedup":{}}}"#,
            serial_ns / threads_ns
        )
    }

    #[test]
    fn arm_ratios_are_serial_normalized_and_skip_serial() {
        // The current run is uniformly 10× faster in wall-clock than
        // the baseline (fewer rounds), but every arm kept its speedup
        // over serial — so every normalized ratio is exactly 1.
        let baseline = parse_bench_run("b", &bench_json(1000.0, 500.0, 800.0)).expect("baseline");
        let current = parse_bench_run("c", &bench_json(100.0, 50.0, 80.0)).expect("current");
        let ratios = bench_arm_ratios(&current, &baseline);
        assert_eq!(ratios.len(), 2, "serial arm must be skipped: {ratios:?}");
        for (arm, ratio) in &ratios {
            assert!((ratio - 1.0).abs() < 1e-12, "{arm}: {ratio}");
        }
    }

    #[test]
    fn regressed_arm_is_named() {
        let baseline = parse_bench_run("b", &bench_json(1000.0, 500.0, 800.0)).expect("baseline");
        // The fleet arm got slower than serial; the threads arm held.
        let current = parse_bench_run("c", &bench_json(1000.0, 500.0, 4000.0)).expect("current");
        let ratios = bench_arm_ratios(&current, &baseline);
        let fleet =
            ratios.iter().find(|(arm, _)| arm.contains("fleet")).expect("fleet arm compared");
        assert!(fleet.1 < 0.5, "fleet regression must show: {ratios:?}");
        let threads = ratios.iter().find(|(arm, _)| arm.contains("threads")).expect("threads arm");
        assert!((threads.1 - 1.0).abs() < 1e-12, "healthy arm must not trip: {ratios:?}");
    }

    #[test]
    fn missing_serial_arm_disables_per_arm_checks() {
        let no_serial = r#"{"benchmarks":[{"name":"only_arm","median_ns":10.0}],"speedup":1.0}"#;
        let run = parse_bench_run("p", no_serial).expect("parses");
        assert!(bench_arm_ratios(&run, &run).is_empty());
    }

    #[test]
    fn malformed_bench_files_are_rejected() {
        let e = parse_bench_run("p", r#"{"benchmarks":[],"speedup":1.0}"#).expect_err("empty");
        assert!(e.contains("no benchmark samples"), "{e}");
        let e = parse_bench_run("p", r#"{"benchmarks":[{"name":"a","median_ns":0}],"speedup":1}"#)
            .expect_err("zero median");
        assert!(e.contains("'a'"), "{e}");
    }

    #[test]
    fn kernel_files_parse_without_a_speedup_field() {
        let run = parse_bench_run("k", r#"{"benchmarks":[{"name":"matmul/256","median_ns":5.0}]}"#)
            .expect("kernel baselines carry no aggregate speedup");
        assert_eq!(run.speedup, None);
        assert!(require_speedup(&run, "k").expect_err("absent").contains("'k'"));
    }

    fn kernel_json(arms: &[(&str, f64)]) -> BenchRun {
        let body: Vec<String> =
            arms.iter().map(|(n, m)| format!(r#"{{"name":"{n}","median_ns":{m}}}"#)).collect();
        parse_bench_run("k", &format!(r#"{{"benchmarks":[{}]}}"#, body.join(","))).expect("parses")
    }

    #[test]
    fn kernel_ratios_cancel_uniform_machine_speed() {
        // The current run is uniformly 3× slower (a slower CI box) —
        // after geomean normalization every kernel's ratio is exactly 1.
        let baseline = kernel_json(&[("matmul/256", 100.0), ("softmax/4096", 10.0)]);
        let current = kernel_json(&[("matmul/256", 300.0), ("softmax/4096", 30.0)]);
        let (ratios, unmatched) = bench_kernel_ratios(&current, &baseline);
        assert!(unmatched.is_empty());
        for (k, r) in &ratios {
            assert!((r - 1.0).abs() < 1e-12, "{k}: {r}");
        }
    }

    #[test]
    fn regressed_kernel_falls_below_its_peers() {
        let baseline = kernel_json(&[("matmul/256", 100.0), ("softmax/4096", 10.0)]);
        // matmul regressed 4× while softmax held: normalized ratios
        // split around the geomean, with matmul on the losing side.
        let current = kernel_json(&[("matmul/256", 400.0), ("softmax/4096", 10.0)]);
        let (ratios, _) = bench_kernel_ratios(&current, &baseline);
        let matmul = ratios.iter().find(|(k, _)| k == "matmul/256").expect("gated");
        let softmax = ratios.iter().find(|(k, _)| k == "softmax/4096").expect("gated");
        assert!(matmul.1 < 0.55, "regressed kernel must stand out: {ratios:?}");
        assert!(softmax.1 > 1.5, "healthy kernel sits above the geomean: {ratios:?}");
    }

    #[test]
    fn only_prefix_drops_out_of_family_baseline_arms_without_noise() {
        // A partial re-run measured only the matmul family; the
        // committed baseline still carries other kernels. With --only,
        // those extra baseline arms are filtered out before matching,
        // so nothing is reported as "baseline only".
        let mut baseline =
            kernel_json(&[("matmul/256", 100.0), ("softmax/4096", 10.0), ("lstm/64", 50.0)]);
        let mut current = kernel_json(&[("matmul/256", 100.0)]);
        filter_arms(&mut current, "matmul");
        filter_arms(&mut baseline, "matmul");
        let (ratios, unmatched) = bench_kernel_ratios(&current, &baseline);
        assert_eq!(ratios.len(), 1, "{ratios:?}");
        assert!(unmatched.is_empty(), "out-of-prefix arms must not be noise: {unmatched:?}");
    }

    #[test]
    fn serve_runs_parse_and_reject_missing_fields() {
        let run = parse_serve_run(
            "s",
            r#"{"throughput_rps":1200.5,"p50_ns":80000,"p99_ns":410000,"requests":256}"#,
        )
        .expect("parses");
        assert!((run.throughput_rps - 1200.5).abs() < 1e-9);
        assert!((run.p99_ns - 410000.0).abs() < 1e-9);
        let e = parse_serve_run("s", r#"{"throughput_rps":1200.5}"#).expect_err("no p99");
        assert!(e.contains("p99_ns"), "{e}");
        let e = parse_serve_run("s", r#"{"throughput_rps":0,"p99_ns":1}"#).expect_err("zero");
        assert!(e.contains("throughput_rps"), "{e}");
    }

    #[test]
    fn unmatched_kernels_are_reported_not_gated() {
        let baseline = kernel_json(&[("matmul/256", 100.0), ("retired/old", 5.0)]);
        let current = kernel_json(&[("matmul/256", 100.0), ("softmax/4096", 10.0)]);
        let (ratios, unmatched) = bench_kernel_ratios(&current, &baseline);
        assert_eq!(ratios.len(), 1, "{ratios:?}");
        assert!(unmatched.iter().any(|n| n.contains("softmax/4096") && n.contains("current only")));
        assert!(unmatched.iter().any(|n| n.contains("retired/old") && n.contains("baseline only")));
    }
}
