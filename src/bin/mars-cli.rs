//! `mars-cli` — command-line interface to the Mars reproduction.
//!
//! ```text
//! mars-cli inspect  <workload>                      graph stats + memory + baselines
//! mars-cli train    <workload> [options]            train an agent, print summary
//! mars-cli pretrain <workload> [options]            DGI contrastive pre-training only
//! mars-cli trace    <workload> --placement <name>   ASCII Gantt of one placement
//! mars-cli dot      <workload> [--max-nodes N]      Graphviz export to stdout
//! mars-cli evaluate <workload> --placement <name>   measure one placement
//! mars-cli metrics summarize <run.jsonl>            render a telemetry capture
//!
//! workloads:  inception | gnmt | bert | vgg | seq2seq | transformer
//! placements: human | gpu-only | rr2 | rr4 | blocked2 | blocked3 | blocked4 | mincut
//! train options: --agent mars|mars-nopre|grouper|encoder   --budget N
//!                --seed N   --profile small|full   --save <ckpt-path>
//!                --telemetry <run.jsonl>   --dgi-iters N
//!                --eval-threads N   --no-eval-cache
//! ```
//!
//! `--telemetry <path>` records a JSONL event stream (per-iteration DGI
//! loss, per-update PPO diagnostics, per-evaluation simulator gauges,
//! and a span-tree profile of the hot kernels); inspect it afterwards
//! with `mars-cli metrics summarize <path>`.

use mars::core::agent::{Agent, AgentKind, TrainingLog};
use mars::core::baselines::{gpu_only, human_expert};
use mars::core::config::MarsConfig;
use mars::core::partitioner::best_min_cut;
use mars::core::workload_input::WorkloadInput;
use mars::graph::analysis::{stats, to_dot};
use mars::graph::generators::{Profile, Workload};
use mars::graph::CompGraph;
use mars::nn::checkpoint;
use mars::sim::{
    check_memory, simulate_traced, Cluster, Environment, EvalOutcome, Placement, SimEnv,
};
use mars_rng::rngs::StdRng;
use mars_rng::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_workload(s: &str) -> Option<Workload> {
    Some(match s {
        "inception" | "inception_v3" => Workload::InceptionV3,
        "gnmt" | "gnmt4" => Workload::Gnmt4,
        "bert" | "bert_base" => Workload::BertBase,
        "vgg" | "vgg16" => Workload::Vgg16,
        "seq2seq" => Workload::Seq2Seq,
        "transformer" => Workload::Transformer,
        "resnet" | "resnet50" => Workload::Resnet50,
        "gpt2" | "gpt2_small" => Workload::Gpt2Small,
        _ => return None,
    })
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // A flag followed by another `--flag` (or by nothing) is a
            // boolean switch, e.g. `--no-eval-cache`.
            match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                Some(value) => {
                    flags.insert(key.to_string(), value.clone());
                    i += 2;
                }
                None => {
                    flags.insert(key.to_string(), String::new());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn named_placement(
    name: &str,
    workload: Workload,
    graph: &CompGraph,
    cluster: &Cluster,
) -> Option<Placement> {
    let mut p = match name {
        "human" => human_expert(workload, graph, cluster),
        "gpu-only" | "gpu" => gpu_only(graph, cluster),
        "rr2" => Placement::round_robin(graph, &cluster.gpu_ids()[..2]),
        "rr4" => Placement::round_robin(graph, &cluster.gpu_ids()),
        "blocked2" => Placement::blocked(graph, &cluster.gpu_ids()[..2]),
        "blocked3" => Placement::blocked(graph, &cluster.gpu_ids()[..3]),
        "blocked4" => Placement::blocked(graph, &cluster.gpu_ids()),
        "mincut" => return best_min_cut(graph, cluster),
        _ => return None,
    };
    p.enforce_compatibility(graph, cluster);
    Some(p)
}

fn cmd_inspect(workload: Workload, profile: Profile) {
    let graph = workload.build(profile);
    let cluster = Cluster::p100_quad();
    let s = stats(&graph);
    println!("workload {}", graph.name);
    println!("  nodes {}  edges {}  depth {}  max width {}", s.nodes, s.edges, s.depth, s.max_width);
    println!(
        "  training FLOPs {:.3e}  memory {:.2} GB  mean edge {:.2} MB",
        s.total_flops,
        s.total_memory_bytes as f64 / (1u64 << 30) as f64,
        s.mean_edge_bytes / (1 << 20) as f64
    );
    println!("  op kinds:");
    for (kind, count) in s.kind_histogram.iter().take(8) {
        println!("    {kind:?}: {count}");
    }
    println!("  baselines on 4×P100 + CPU:");
    let env = SimEnv::new(graph.clone(), cluster.clone(), 0);
    for name in ["human", "gpu-only", "rr4", "blocked3", "mincut"] {
        let Some(p) = named_placement(name, workload, &graph, &cluster) else {
            println!("    {name:<9} (unavailable)");
            continue;
        };
        match env.true_step_time(&p) {
            Ok(rep) => println!(
                "    {name:<9} {:8.3} s/step  (comm {:.3} s, {} transfers)",
                rep.makespan_s, rep.comm_s, rep.num_transfers
            ),
            Err(e) => println!("    {name:<9} {e}"),
        }
    }
}

/// Install a JSONL recorder when `--telemetry <path>` was given.
/// Returns the path so the caller can report where the capture went.
fn install_telemetry(flags: &HashMap<String, String>) -> Option<String> {
    let path = flags.get("telemetry")?;
    match mars::telemetry::install_file(path) {
        Ok(()) => Some(path.clone()),
        Err(e) => {
            eprintln!("cannot open telemetry sink '{path}': {e}");
            None
        }
    }
}

fn finish_telemetry(path: Option<String>) {
    if let Some(path) = path {
        mars::telemetry::uninstall();
        println!("telemetry written to {path} (mars-cli metrics summarize {path})");
    }
}

fn cmd_train(workload: Workload, profile: Profile, flags: &HashMap<String, String>) {
    let kind = match flags.get("agent").map(String::as_str) {
        None | Some("mars") => AgentKind::Mars,
        Some("mars-nopre") => AgentKind::MarsNoPretrain,
        Some("grouper") => AgentKind::GrouperPlacer,
        Some("encoder") => AgentKind::EncoderPlacer,
        Some(other) => {
            eprintln!("unknown agent '{other}'");
            return;
        }
    };
    let budget: usize = flags.get("budget").and_then(|s| s.parse().ok()).unwrap_or(400);
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let mut cfg = match flags.get("profile").map(String::as_str) {
        Some("full") | Some("paper") => MarsConfig::paper(),
        _ => MarsConfig::small(),
    };
    if let Some(iters) = flags.get("dgi-iters").and_then(|s| s.parse().ok()) {
        cfg.dgi_iters = iters;
    }
    if let Some(threads) = flags.get("eval-threads").and_then(|s| s.parse().ok()) {
        cfg.eval_threads = threads;
    }
    if flags.contains_key("no-eval-cache") {
        cfg.eval_cache = false;
    }
    let telemetry = install_telemetry(flags);

    let graph = workload.build(profile);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent = Agent::new(
        kind,
        cfg,
        mars::graph::features::FEATURE_DIM,
        cluster.num_devices(),
        &mut rng,
    );
    if kind == AgentKind::Mars {
        println!("DGI pre-training…");
        if let Some(report) = agent.pretrain(&input, &mut rng) {
            println!("  loss {:.4} → {:.4}", report.losses[0], report.best_loss);
        }
    }
    let mut env = SimEnv::new(graph, cluster, seed);
    env.set_eval_threads(agent.cfg.eval_threads);
    env.set_cache_enabled(agent.cfg.eval_cache);
    let mut log = TrainingLog::default();
    println!("training {} on {} for {budget} placement evaluations…", kind.label(), workload.name());
    agent.train(&mut env, &input, budget, &mut rng, &mut log);
    match log.best_reading_s {
        Some(best) => {
            let p = log.best_placement.as_ref().expect("placement recorded");
            println!(
                "best {best:.3} s/step on devices {:?} after {} samples \
                 ({:.1} simulated machine-hours)",
                p.devices_used(),
                log.total_samples,
                log.machine_s / 3600.0
            );
        }
        None => println!("no valid placement found in {} samples", log.total_samples),
    }
    if let Some((hits, misses, evictions)) = env.cache_stats() {
        let total = hits + misses;
        println!(
            "eval cache: {hits}/{total} hits ({:.1}%), {evictions} evictions",
            env.cache_hit_rate().unwrap_or(0.0) * 100.0
        );
    }
    if let Some(path) = flags.get("save") {
        match checkpoint::save_file(&agent.store, path) {
            Ok(()) => println!("checkpoint written to {path}"),
            Err(e) => eprintln!("checkpoint save failed: {e}"),
        }
    }
    finish_telemetry(telemetry);
}

fn cmd_pretrain(workload: Workload, profile: Profile, flags: &HashMap<String, String>) {
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let mut cfg = match flags.get("profile").map(String::as_str) {
        Some("full") | Some("paper") => MarsConfig::paper(),
        _ => MarsConfig::small(),
    };
    if let Some(iters) = flags.get("dgi-iters").and_then(|s| s.parse().ok()) {
        cfg.dgi_iters = iters;
    }
    let telemetry = install_telemetry(flags);
    let graph = workload.build(profile);
    let input = WorkloadInput::from_graph(&graph);
    let cluster = Cluster::p100_quad();
    let mut rng = StdRng::seed_from_u64(seed);
    let iters = cfg.dgi_iters;
    let mut agent = Agent::new(
        AgentKind::Mars,
        cfg,
        mars::graph::features::FEATURE_DIM,
        cluster.num_devices(),
        &mut rng,
    );
    println!("DGI pre-training on {} for {iters} iterations…", workload.name());
    match agent.pretrain(&input, &mut rng) {
        Some(report) => println!(
            "loss {:.4} → best {:.4} at iteration {}",
            report.losses[0], report.best_loss, report.best_iter
        ),
        None => eprintln!("agent has no pre-trainable encoder"),
    }
    if let Some(path) = flags.get("save") {
        match checkpoint::save_file(&agent.store, path) {
            Ok(()) => println!("checkpoint written to {path}"),
            Err(e) => eprintln!("checkpoint save failed: {e}"),
        }
    }
    finish_telemetry(telemetry);
}

fn cmd_metrics(args: &[String]) -> ExitCode {
    let (Some(sub), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: mars-cli metrics summarize <run.jsonl>");
        return ExitCode::FAILURE;
    };
    if sub != "summarize" {
        eprintln!("unknown metrics subcommand '{sub}' (expected 'summarize')");
        return ExitCode::FAILURE;
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    match mars::telemetry::summarize(&text) {
        Ok(summary) => {
            print!("{}", summary.render());
            let kernel_share = summary.self_time_fraction(&["tensor.", "nn.", "autograd."]);
            if kernel_share > 0.0 {
                println!(
                    "kernel self-time share (tensor/nn/autograd): {:.1}%",
                    kernel_share * 100.0
                );
            }
            if let Some(report) = summary.rollout_report() {
                print!("{}", report.render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot summarize '{path}': {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_trace(workload: Workload, profile: Profile, flags: &HashMap<String, String>) {
    let graph = workload.build(profile);
    let cluster = Cluster::p100_quad();
    let name = flags.get("placement").map(String::as_str).unwrap_or("blocked3");
    let Some(p) = named_placement(name, workload, &graph, &cluster) else {
        eprintln!("unknown or infeasible placement '{name}'");
        return;
    };
    if let Err(e) = check_memory(&graph, &p, &cluster) {
        eprintln!("placement invalid: {e}");
        return;
    }
    let (report, trace) = simulate_traced(&graph, &p, &cluster);
    println!(
        "{} under '{name}': {:.3} s/step, comm {:.3} s, {} transfers",
        graph.name, report.makespan_s, report.comm_s, report.num_transfers
    );
    print!("{}", trace.ascii_gantt(cluster.num_devices(), 100));
    for d in 0..cluster.num_devices() {
        println!("dev{d} idle {:.0}%", trace.idle_fraction(d) * 100.0);
    }
}

fn cmd_evaluate(workload: Workload, profile: Profile, flags: &HashMap<String, String>) {
    let graph = workload.build(profile);
    let cluster = Cluster::p100_quad();
    let name = flags.get("placement").map(String::as_str).unwrap_or("gpu-only");
    let Some(p) = named_placement(name, workload, &graph, &cluster) else {
        eprintln!("unknown placement '{name}'");
        return;
    };
    let seed = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let mut env = SimEnv::new(graph, cluster, seed);
    match env.evaluate(&p) {
        EvalOutcome::Valid { per_step_s } => {
            println!("{per_step_s:.4} s/step (15-step protocol, 5 warm-up discarded)")
        }
        EvalOutcome::Bad { cutoff_s } => println!("aborted: exceeded {cutoff_s:.0} s cutoff"),
        EvalOutcome::Invalid { oom } => println!("invalid: {oom}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: mars-cli <inspect|train|pretrain|trace|dot|evaluate> <workload> [--flags]\n       mars-cli metrics summarize <run.jsonl>\n(see --help in the module docs)";
    if args.first().map(String::as_str) == Some("metrics") {
        return cmd_metrics(&args[1..]);
    }
    let (Some(cmd), Some(wname)) = (args.first(), args.get(1)) else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let Some(workload) = parse_workload(wname) else {
        eprintln!("unknown workload '{wname}'");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[2..]);
    let profile = match flags.get("profile").map(String::as_str) {
        Some("full") | Some("paper") => Profile::Paper,
        _ => Profile::Reduced,
    };
    match cmd.as_str() {
        "inspect" => cmd_inspect(workload, profile),
        "train" => cmd_train(workload, profile, &flags),
        "pretrain" => cmd_pretrain(workload, profile, &flags),
        "trace" => cmd_trace(workload, profile, &flags),
        "evaluate" => cmd_evaluate(workload, profile, &flags),
        "dot" => {
            let max_nodes =
                flags.get("max-nodes").and_then(|s| s.parse().ok()).unwrap_or(usize::MAX);
            print!("{}", to_dot(&workload.build(profile), max_nodes));
        }
        other => {
            eprintln!("unknown command '{other}'\n{usage}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
