//! Typed command-line flag parsing for `mars-cli`.
//!
//! The binary's flags all follow the same `--key value` / `--switch`
//! grammar; this module parses that grammar once and layers typed
//! accessors on top so every command rejects malformed values with an
//! error naming the flag ("invalid value 'abc' for --budget") instead
//! of silently substituting a default.

use mars_net::Addr;
use std::collections::HashMap;
use std::fmt::Display;
use std::str::FromStr;

/// Parsed `--key value` / `--switch` command-line flags.
///
/// Use the typed accessors ([`Flags::parsed`], [`Flags::parsed_opt`],
/// [`Flags::switch`]) rather than reading raw values: they produce
/// uniform, user-facing error strings for malformed input.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    map: HashMap<String, String>,
}

impl Flags {
    /// Parse raw arguments. A flag followed by another `--flag` (or by
    /// nothing) is a boolean switch, e.g. `--no-eval-cache`; bare
    /// positional tokens are ignored (the caller consumes those first).
    pub fn parse(args: &[String]) -> Flags {
        let mut map = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(value) => {
                        map.insert(key.to_string(), value.clone());
                        i += 2;
                    }
                    None => {
                        map.insert(key.to_string(), String::new());
                        i += 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        Flags { map }
    }

    /// Raw string value of `--key`, if present (empty for switches).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Was `--key` given at all (with or without a value)?
    pub fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// `--key value` parsed as `T`, or `default` when absent.
    /// Malformed or missing values are errors, never silent defaults.
    pub fn parsed<T: FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        Ok(self.parsed_opt(key)?.unwrap_or(default))
    }

    /// `--key value` parsed as `T`, `None` when the flag is absent.
    pub fn parsed_opt<T: FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some("") => Err(format!("missing value for --{key}")),
            Some(v) => v.parse().map(Some).map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// `--key value` restricted to an allow-list of spellings; returns
    /// the matched spelling (so callers can `match` on `&'static str`).
    pub fn one_of(
        &self,
        key: &str,
        allowed: &[&'static str],
        default: &'static str,
    ) -> Result<&'static str, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => allowed.iter().copied().find(|a| *a == v).ok_or_else(|| {
                format!("invalid value '{v}' for --{key} (expected one of: {})", allowed.join(", "))
            }),
        }
    }

    /// A boolean switch: present with no value → `true`, absent →
    /// `false`. Giving a switch a value is an error — it is the most
    /// common way to typo a flag (`--no-eval-cache yes`).
    pub fn switch(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            None => Ok(false),
            Some("") => Ok(true),
            Some(v) => Err(format!("--{key} is a switch and takes no value (got '{v}')")),
        }
    }

    /// `--key value` kept as a string, `None` when absent; an empty
    /// value is an error (a path-taking flag with nothing after it).
    pub fn string_opt(&self, key: &str) -> Result<Option<String>, String> {
        match self.get(key) {
            None => Ok(None),
            Some("") => Err(format!("missing value for --{key}")),
            Some(v) => Ok(Some(v.to_string())),
        }
    }
}

/// Print a flag error to stderr and map it to a failing exit code.
/// All commands funnel their `Result<(), String>` through this.
pub fn fail(err: impl Display) -> std::process::ExitCode {
    eprintln!("error: {err}");
    std::process::ExitCode::FAILURE
}

/// How `train` distributes placement evaluation, from the
/// `--workers` / `--listen` / `--connect` flag triple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetMode {
    /// No fleet flags: evaluate in-process (the default).
    InProcess,
    /// `--workers N`: spawn N local worker processes over a private
    /// socket.
    Spawn {
        /// Number of worker processes.
        workers: usize,
    },
    /// `--workers N --listen ADDR`: bind `ADDR` and wait for N
    /// externally started workers.
    Listen {
        /// Number of workers to wait for.
        workers: usize,
        /// Address to bind.
        addr: Addr,
    },
    /// `--connect ADDR`: run as a rollout worker serving the learner
    /// at `ADDR` (no training happens in this process).
    Connect {
        /// Learner address to dial.
        addr: Addr,
    },
}

impl FleetMode {
    /// Resolve the fleet flags, rejecting contradictory combinations
    /// with errors that name the offending flag.
    pub fn from_flags(flags: &Flags) -> Result<FleetMode, String> {
        let workers: Option<usize> = flags.parsed_opt("workers")?;
        let listen = flags.string_opt("listen")?;
        let connect = flags.string_opt("connect")?;
        if let Some(0) = workers {
            return Err("invalid value '0' for --workers (need at least 1)".into());
        }
        let parse_addr = |flag: &str, a: &str| -> Result<Addr, String> {
            Addr::parse(a).map_err(|e| format!("invalid value '{a}' for --{flag}: {e}"))
        };
        match (workers, listen, connect) {
            (_, Some(_), Some(_)) => Err("--listen and --connect are mutually exclusive".into()),
            (Some(_), None, Some(_)) => {
                Err("--connect runs a worker and takes no --workers".into())
            }
            (None, Some(_), None) => {
                Err("--listen needs --workers N (how many workers to wait for)".into())
            }
            (None, None, Some(a)) => Ok(FleetMode::Connect { addr: parse_addr("connect", &a)? }),
            (Some(workers), Some(a), None) => {
                Ok(FleetMode::Listen { workers, addr: parse_addr("listen", &a)? })
            }
            (Some(workers), None, None) => Ok(FleetMode::Spawn { workers }),
            (None, None, None) => Ok(FleetMode::InProcess),
        }
    }

    /// Worker count this mode contributes to `MarsConfig::workers`
    /// (0 = in-process; a `Connect` worker trains nothing).
    pub fn workers(&self) -> usize {
        match self {
            FleetMode::InProcess | FleetMode::Connect { .. } => 0,
            FleetMode::Spawn { workers } | FleetMode::Listen { workers, .. } => *workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_values_and_switches() {
        let f = flags(&["--budget", "100", "--no-eval-cache", "--seed", "7"]);
        assert_eq!(f.parsed("budget", 0usize).unwrap(), 100);
        assert_eq!(f.parsed("seed", 0u64).unwrap(), 7);
        assert!(f.switch("no-eval-cache").unwrap());
        assert!(!f.switch("absent").unwrap());
    }

    #[test]
    fn absent_flag_yields_default() {
        let f = flags(&[]);
        assert_eq!(f.parsed("budget", 400usize).unwrap(), 400);
        assert_eq!(f.parsed_opt::<u64>("seed").unwrap(), None);
    }

    #[test]
    fn malformed_value_is_an_error_naming_the_flag() {
        let f = flags(&["--budget", "lots"]);
        let err = f.parsed("budget", 0usize).unwrap_err();
        assert!(err.contains("'lots'") && err.contains("--budget"), "{err}");
    }

    #[test]
    fn switch_with_value_is_rejected() {
        let f = flags(&["--no-eval-cache", "yes"]);
        let err = f.switch("no-eval-cache").unwrap_err();
        assert!(err.contains("--no-eval-cache") && err.contains("'yes'"), "{err}");
    }

    #[test]
    fn valueless_value_flag_is_rejected() {
        let f = flags(&["--save", "--seed", "3"]);
        assert!(f.string_opt("save").unwrap_err().contains("--save"));
        assert_eq!(f.parsed("seed", 0u64).unwrap(), 3);
    }

    #[test]
    fn fleet_mode_defaults_to_in_process() {
        assert_eq!(FleetMode::from_flags(&flags(&[])).unwrap(), FleetMode::InProcess);
        assert_eq!(FleetMode::from_flags(&flags(&[])).unwrap().workers(), 0);
    }

    #[test]
    fn fleet_mode_parses_the_three_distributed_shapes() {
        let spawn = FleetMode::from_flags(&flags(&["--workers", "4"])).unwrap();
        assert_eq!(spawn, FleetMode::Spawn { workers: 4 });
        assert_eq!(spawn.workers(), 4);

        let listen =
            FleetMode::from_flags(&flags(&["--workers", "2", "--listen", "unix:/tmp/f.sock"]))
                .unwrap();
        assert_eq!(
            listen,
            FleetMode::Listen { workers: 2, addr: Addr::Unix("/tmp/f.sock".into()) }
        );

        let connect = FleetMode::from_flags(&flags(&["--connect", "127.0.0.1:9000"])).unwrap();
        assert_eq!(connect, FleetMode::Connect { addr: Addr::Tcp("127.0.0.1:9000".into()) });
        assert_eq!(connect.workers(), 0);
    }

    #[test]
    fn fleet_mode_rejects_zero_workers() {
        let err = FleetMode::from_flags(&flags(&["--workers", "0"])).unwrap_err();
        assert!(err.contains("'0'") && err.contains("--workers"), "{err}");
        let err = FleetMode::from_flags(&flags(&["--workers", "-2"])).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
    }

    #[test]
    fn fleet_mode_rejects_contradictory_flag_combinations() {
        let err = FleetMode::from_flags(&flags(&[
            "--listen",
            "unix:/tmp/a.sock",
            "--connect",
            "unix:/tmp/b.sock",
        ]))
        .unwrap_err();
        assert!(err.contains("--listen") && err.contains("--connect"), "{err}");

        let err =
            FleetMode::from_flags(&flags(&["--workers", "2", "--connect", "h:1"])).unwrap_err();
        assert!(err.contains("--connect") && err.contains("--workers"), "{err}");

        let err = FleetMode::from_flags(&flags(&["--listen", "unix:/tmp/a.sock"])).unwrap_err();
        assert!(err.contains("--listen") && err.contains("--workers"), "{err}");
    }

    #[test]
    fn fleet_mode_rejects_malformed_addresses_naming_the_flag() {
        let err =
            FleetMode::from_flags(&flags(&["--workers", "2", "--listen", "nowhere"])).unwrap_err();
        assert!(err.contains("--listen") && err.contains("'nowhere'"), "{err}");

        let err = FleetMode::from_flags(&flags(&["--connect", "host:99999"])).unwrap_err();
        assert!(err.contains("--connect") && err.contains("'host:99999'"), "{err}");

        let err = FleetMode::from_flags(&flags(&["--connect", "unix:"])).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
    }

    #[test]
    fn one_of_restricts_spellings() {
        let f = flags(&["--agent", "grouper"]);
        assert_eq!(f.one_of("agent", &["mars", "grouper"], "mars").unwrap(), "grouper");
        assert_eq!(f.one_of("profile", &["small", "full"], "small").unwrap(), "small");
        let bad = flags(&["--agent", "zeus"]);
        let err = bad.one_of("agent", &["mars", "grouper"], "mars").unwrap_err();
        assert!(err.contains("zeus") && err.contains("mars, grouper"), "{err}");
    }
}
