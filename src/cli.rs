//! Typed command-line flag parsing for `mars-cli`.
//!
//! The binary's flags all follow the same `--key value` / `--switch`
//! grammar; this module parses that grammar once and layers typed
//! accessors on top so every command rejects malformed values with an
//! error naming the flag ("invalid value 'abc' for --budget") instead
//! of silently substituting a default.

use std::collections::HashMap;
use std::fmt::Display;
use std::str::FromStr;

/// Parsed `--key value` / `--switch` command-line flags.
///
/// Use the typed accessors ([`Flags::parsed`], [`Flags::parsed_opt`],
/// [`Flags::switch`]) rather than reading raw values: they produce
/// uniform, user-facing error strings for malformed input.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    map: HashMap<String, String>,
}

impl Flags {
    /// Parse raw arguments. A flag followed by another `--flag` (or by
    /// nothing) is a boolean switch, e.g. `--no-eval-cache`; bare
    /// positional tokens are ignored (the caller consumes those first).
    pub fn parse(args: &[String]) -> Flags {
        let mut map = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(value) => {
                        map.insert(key.to_string(), value.clone());
                        i += 2;
                    }
                    None => {
                        map.insert(key.to_string(), String::new());
                        i += 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        Flags { map }
    }

    /// Raw string value of `--key`, if present (empty for switches).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Was `--key` given at all (with or without a value)?
    pub fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// `--key value` parsed as `T`, or `default` when absent.
    /// Malformed or missing values are errors, never silent defaults.
    pub fn parsed<T: FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        Ok(self.parsed_opt(key)?.unwrap_or(default))
    }

    /// `--key value` parsed as `T`, `None` when the flag is absent.
    pub fn parsed_opt<T: FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some("") => Err(format!("missing value for --{key}")),
            Some(v) => v.parse().map(Some).map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// `--key value` restricted to an allow-list of spellings; returns
    /// the matched spelling (so callers can `match` on `&'static str`).
    pub fn one_of(
        &self,
        key: &str,
        allowed: &[&'static str],
        default: &'static str,
    ) -> Result<&'static str, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => allowed.iter().copied().find(|a| *a == v).ok_or_else(|| {
                format!("invalid value '{v}' for --{key} (expected one of: {})", allowed.join(", "))
            }),
        }
    }

    /// A boolean switch: present with no value → `true`, absent →
    /// `false`. Giving a switch a value is an error — it is the most
    /// common way to typo a flag (`--no-eval-cache yes`).
    pub fn switch(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            None => Ok(false),
            Some("") => Ok(true),
            Some(v) => Err(format!("--{key} is a switch and takes no value (got '{v}')")),
        }
    }

    /// `--key value` kept as a string, `None` when absent; an empty
    /// value is an error (a path-taking flag with nothing after it).
    pub fn string_opt(&self, key: &str) -> Result<Option<String>, String> {
        match self.get(key) {
            None => Ok(None),
            Some("") => Err(format!("missing value for --{key}")),
            Some(v) => Ok(Some(v.to_string())),
        }
    }
}

/// Print a flag error to stderr and map it to a failing exit code.
/// All commands funnel their `Result<(), String>` through this.
pub fn fail(err: impl Display) -> std::process::ExitCode {
    eprintln!("error: {err}");
    std::process::ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_values_and_switches() {
        let f = flags(&["--budget", "100", "--no-eval-cache", "--seed", "7"]);
        assert_eq!(f.parsed("budget", 0usize).unwrap(), 100);
        assert_eq!(f.parsed("seed", 0u64).unwrap(), 7);
        assert!(f.switch("no-eval-cache").unwrap());
        assert!(!f.switch("absent").unwrap());
    }

    #[test]
    fn absent_flag_yields_default() {
        let f = flags(&[]);
        assert_eq!(f.parsed("budget", 400usize).unwrap(), 400);
        assert_eq!(f.parsed_opt::<u64>("seed").unwrap(), None);
    }

    #[test]
    fn malformed_value_is_an_error_naming_the_flag() {
        let f = flags(&["--budget", "lots"]);
        let err = f.parsed("budget", 0usize).unwrap_err();
        assert!(err.contains("'lots'") && err.contains("--budget"), "{err}");
    }

    #[test]
    fn switch_with_value_is_rejected() {
        let f = flags(&["--no-eval-cache", "yes"]);
        let err = f.switch("no-eval-cache").unwrap_err();
        assert!(err.contains("--no-eval-cache") && err.contains("'yes'"), "{err}");
    }

    #[test]
    fn valueless_value_flag_is_rejected() {
        let f = flags(&["--save", "--seed", "3"]);
        assert!(f.string_opt("save").unwrap_err().contains("--save"));
        assert_eq!(f.parsed("seed", 0u64).unwrap(), 3);
    }

    #[test]
    fn one_of_restricts_spellings() {
        let f = flags(&["--agent", "grouper"]);
        assert_eq!(f.one_of("agent", &["mars", "grouper"], "mars").unwrap(), "grouper");
        assert_eq!(f.one_of("profile", &["small", "full"], "small").unwrap(), "small");
        let bad = flags(&["--agent", "zeus"]);
        let err = bad.one_of("agent", &["mars", "grouper"], "mars").unwrap_err();
        assert!(err.contains("zeus") && err.contains("mars, grouper"), "{err}");
    }
}
